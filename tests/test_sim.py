"""Unit tests for repro.sim (sampling, Monte Carlo engine, statistics)."""

import numpy as np
import pytest

from repro.core.generators import chain_graph
from repro.core.paths import critical_path_length
from repro.exceptions import EstimationError
from repro.failures.models import ExponentialErrorModel, FixedProbabilityModel
from repro.rv.empirical import RunningMoments
from repro.sim.engine import MonteCarloEngine, simulate_expected_makespan
from repro.sim.longest_path import batch_makespans_with_details, streaming_makespans
from repro.sim.sampler import sample_failure_mask, sample_task_times
from repro.sim.stats import ConvergenceTracker, relative_half_width, required_trials


class TestSampler:
    def test_two_state_values(self, diamond, rng):
        model = FixedProbabilityModel(0.5)
        times = sample_task_times(diamond, model, 1000, rng)
        idx = diamond.index()
        for j, tid in enumerate(idx.task_ids):
            w = diamond.weight(tid)
            unique = np.unique(times[:, j])
            assert set(unique.tolist()) <= {w, 2 * w}

    def test_two_state_failure_frequency(self, rng):
        g = chain_graph(1, weight=[1.0])
        model = FixedProbabilityModel(0.25)
        times = sample_task_times(g, model, 100_000, rng)
        frequency = np.mean(times[:, 0] > 1.5)
        assert frequency == pytest.approx(0.25, abs=0.01)

    def test_exponential_model_failure_frequency(self, rng):
        g = chain_graph(1, weight=[2.0])
        model = ExponentialErrorModel(0.3)
        times = sample_task_times(g, model, 100_000, rng)
        frequency = np.mean(times[:, 0] > 3.0)
        assert frequency == pytest.approx(model.failure_probability(2.0), abs=0.01)

    def test_geometric_mode_mean(self, rng):
        g = chain_graph(1, weight=[1.0])
        model = FixedProbabilityModel(0.5)
        times = sample_task_times(g, model, 200_000, rng, mode="geometric")
        # expected executions = 1/(1-q) = 2
        assert times[:, 0].mean() == pytest.approx(2.0, rel=0.02)

    def test_reexecution_factor(self, rng):
        g = chain_graph(1, weight=[1.0])
        model = FixedProbabilityModel(0.9999)  # essentially always fails
        times = sample_task_times(g, model, 100, rng, reexecution_factor=3.0)
        assert times.max() == pytest.approx(3.0)

    def test_failure_mask_shape(self, cholesky4, rng):
        model = ExponentialErrorModel.for_graph(cholesky4, 0.01)
        mask = sample_failure_mask(cholesky4.index().weights, model, 50, rng)
        assert mask.shape == (50, cholesky4.num_tasks)
        assert mask.dtype == bool

    def test_invalid_arguments(self, diamond, rng):
        model = ExponentialErrorModel(0.1)
        with pytest.raises(EstimationError):
            sample_task_times(diamond, model, 0, rng)
        with pytest.raises(EstimationError):
            sample_task_times(diamond, model, 10, rng, mode="bogus")
        with pytest.raises(EstimationError):
            sample_task_times(diamond, model, 10, rng, reexecution_factor=0.5)


class TestEngine:
    def test_engine_matches_estimator_shortcut(self, cholesky4):
        model = ExponentialErrorModel.for_graph(cholesky4, 0.01)
        engine_mean = MonteCarloEngine(cholesky4, model, trials=8_000, seed=5).run().mean
        shortcut = simulate_expected_makespan(cholesky4, model, trials=8_000, seed=5)
        assert engine_mean == pytest.approx(shortcut)

    def test_batching_does_not_change_the_estimate(self, cholesky4):
        model = ExponentialErrorModel.for_graph(cholesky4, 0.01)
        small_batches = MonteCarloEngine(
            cholesky4, model, trials=10_000, seed=9, batch_size=512
        ).run()
        one_batch = MonteCarloEngine(
            cholesky4, model, trials=10_000, seed=9, batch_size=10_000
        ).run()
        # Different batch layout consumes the RNG differently, so means are
        # statistically equal but not identical.
        assert small_batches.mean == pytest.approx(one_batch.mean, rel=5e-3)
        assert small_batches.trials == one_batch.trials == 10_000

    def test_result_fields(self, diamond):
        model = FixedProbabilityModel(0.2)
        result = MonteCarloEngine(diamond, model, trials=2_000, seed=1, keep_samples=True).run()
        assert result.trials == 2_000
        assert result.minimum <= result.mean <= result.maximum
        assert result.samples is not None and result.samples.count == 2_000
        assert result.history  # at least one batch recorded
        assert "MC[" in result.summary()

    def test_mean_bounded_by_extremes(self, lu4):
        model = ExponentialErrorModel.for_graph(lu4, 0.05)
        result = MonteCarloEngine(lu4, model, trials=3_000, seed=2).run()
        d = critical_path_length(lu4)
        assert d - 1e-9 <= result.minimum
        assert result.maximum <= 2 * d + 1e-9

    def test_invalid_parameters(self, diamond):
        model = FixedProbabilityModel(0.1)
        with pytest.raises(EstimationError):
            MonteCarloEngine(diamond, model, trials=-1)
        with pytest.raises(EstimationError):
            MonteCarloEngine(diamond, model, batch_size=0)


class CountingModel(FixedProbabilityModel):
    """Fixed-probability model that counts vectorised probability queries."""

    calls = 0

    def failure_probabilities(self, weights):
        type(self).calls += 1
        return super().failure_probabilities(weights)


class TestZeroCopyPipeline:
    """The engine's zero-copy refactor must not change any sampled result."""

    @staticmethod
    def _reference_makespans(graph, model, trials, seed, batch_size, factor=2.0):
        """The pre-refactor pipeline: trial-major sampling + per-task sweep."""
        idx = graph.index()
        rng = np.random.default_rng(seed)
        q = model.failure_probabilities(idx.weights)
        out = []
        remaining = trials
        while remaining > 0:
            b = min(batch_size, remaining)
            failures = rng.random((b, idx.num_tasks)) < q[None, :]
            times = idx.weights[None, :] + failures * ((factor - 1.0) * idx.weights[None, :])
            completion = np.zeros((b, idx.num_tasks))
            indptr, indices = idx.pred_indptr, idx.pred_indices
            for i in idx.topo_order:
                preds = indices[indptr[i] : indptr[i + 1]]
                if preds.size:
                    completion[:, i] = times[:, i] + completion[:, preds].max(axis=1)
                else:
                    completion[:, i] = times[:, i]
            out.append(completion.max(axis=1))
            remaining -= b
        return np.concatenate(out)

    def test_results_unchanged_after_refactor(self, cholesky4):
        model = ExponentialErrorModel.for_graph(cholesky4, 0.02)
        ref = self._reference_makespans(cholesky4, model, 5_000, seed=77, batch_size=1_024)
        result = MonteCarloEngine(
            cholesky4, model, trials=5_000, seed=77, batch_size=1_024, keep_samples=True
        ).run()
        assert np.array_equal(np.sort(result.samples.samples()), np.sort(ref))
        assert result.minimum == ref.min()
        assert result.maximum == ref.max()

    def test_seed_reproducible(self, lu4):
        model = ExponentialErrorModel.for_graph(lu4, 0.01)
        a = MonteCarloEngine(lu4, model, trials=4_000, seed=3).run()
        b = MonteCarloEngine(lu4, model, trials=4_000, seed=3).run()
        assert a.mean == b.mean
        assert a.std == b.std
        assert a.minimum == b.minimum and a.maximum == b.maximum

    def test_failure_probabilities_computed_once(self, cholesky4):
        CountingModel.calls = 0
        model = CountingModel(0.1)
        engine = MonteCarloEngine(cholesky4, model, trials=10_000, seed=0, batch_size=1_000)
        assert CountingModel.calls == 1  # computed eagerly, in the constructor
        engine.run()
        assert CountingModel.calls == 1  # ... and never again per batch

    def test_buffers_allocated_once(self, cholesky4):
        model = FixedProbabilityModel(0.2)
        engine = MonteCarloEngine(cholesky4, model, trials=7_000, seed=1, batch_size=1_000)
        kernel_buffer = engine._kernel._buffer
        uniform = engine._uniform
        mask = engine._mask
        assert kernel_buffer is not None  # allocated by the constructor
        engine.run()  # 7 batches later ...
        assert engine._kernel._buffer is kernel_buffer
        assert engine._uniform is uniform
        assert engine._mask is mask

    def test_float32_close_to_float64(self, lu4):
        model = ExponentialErrorModel.for_graph(lu4, 0.01)
        exact = MonteCarloEngine(lu4, model, trials=5_000, seed=11).run()
        approx = MonteCarloEngine(lu4, model, trials=5_000, seed=11, dtype="float32").run()
        assert approx.dtype == "float32"
        assert exact.dtype == "float64"
        assert approx.mean == pytest.approx(exact.mean, rel=1e-5)

    def test_geometric_mode_unchanged(self, cholesky4):
        model = ExponentialErrorModel.for_graph(cholesky4, 0.05)
        idx = cholesky4.index()
        rng = np.random.default_rng(21)
        ref = []
        remaining = 3_000
        while remaining > 0:
            b = min(1_024, remaining)
            times = sample_task_times(idx, model, b, rng, mode="geometric")
            completion = np.zeros((b, idx.num_tasks))
            indptr, indices = idx.pred_indptr, idx.pred_indices
            for i in idx.topo_order:
                preds = indices[indptr[i] : indptr[i + 1]]
                base = completion[:, preds].max(axis=1) if preds.size else 0.0
                completion[:, i] = times[:, i] + base
            ref.append(completion.max(axis=1))
            remaining -= b
        ref = np.concatenate(ref)
        result = MonteCarloEngine(
            cholesky4, model, trials=3_000, seed=21, batch_size=1_024,
            mode="geometric", keep_samples=True,
        ).run()
        assert np.array_equal(np.sort(result.samples.samples()), np.sort(ref))

    def test_geometric_broadcast_matches_materialised_probabilities(self, rng):
        # The sampler fix: broadcasting the success vector must consume the
        # RNG exactly like the old full (trials, tasks) probability matrix.
        success = np.array([0.7, 0.1, 0.5, 0.001, 0.999])
        a = np.random.default_rng(5).geometric(success[None, :].repeat(100, axis=0))
        b = np.random.default_rng(5).geometric(success, size=(100, 5))
        assert np.array_equal(a, b)

    def test_invalid_dtype_rejected(self, diamond):
        model = FixedProbabilityModel(0.1)
        with pytest.raises(EstimationError):
            MonteCarloEngine(diamond, model, trials=10, dtype="int8")


class TestLongestPathHelpers:
    def test_details_argmax_is_a_sink_heavy_task(self, diamond):
        idx = diamond.index()
        weights = idx.weights[None, :].repeat(3, axis=0)
        makespans, argmax = batch_makespans_with_details(idx, weights)
        assert np.allclose(makespans, critical_path_length(diamond))
        assert all(idx.task_ids[i] == "t" for i in argmax)

    def test_streaming(self, cholesky4, rng):
        idx = cholesky4.index()
        batches = [
            idx.weights[None, :] * rng.uniform(1.0, 2.0, size=(4, idx.num_tasks))
            for _ in range(3)
        ]
        outputs = list(streaming_makespans(idx, batches))
        assert len(outputs) == 3
        assert all(o.shape == (4,) for o in outputs)


class TestStats:
    def test_required_trials_shrinks_with_looser_target(self):
        tight = required_trials(std=1.0, mean=10.0, target_relative_error=1e-3)
        loose = required_trials(std=1.0, mean=10.0, target_relative_error=1e-2)
        assert tight > loose
        assert loose >= 1

    def test_relative_half_width(self, rng):
        moments = RunningMoments()
        moments.update(rng.normal(100.0, 1.0, size=10_000))
        assert relative_half_width(moments) < 1e-3

    def test_tracker_convergence_flag(self, rng):
        tracker = ConvergenceTracker(target_relative_half_width=0.05)
        assert not tracker.converged
        tracker.update(rng.normal(10.0, 0.5, size=5_000))
        assert tracker.converged
        summary = tracker.summary()
        assert summary["trials"] == 5_000
        assert summary["batches"] == 1

    def test_invalid_inputs(self):
        with pytest.raises(EstimationError):
            required_trials(1.0, 10.0, target_relative_error=0.0)
        with pytest.raises(EstimationError):
            required_trials(1.0, 0.0, target_relative_error=0.1)
