"""Tests of the pluggable compiled-kernel backend layer.

Three groups:

* **Resolution** — knob precedence (explicit argument >
  ``REPRO_KERNEL_BACKEND`` > ``"numpy"``), strict validation of explicit
  names, the warn-once-and-fall-back contract for unrecognised
  environment values, and the per-``(backend, op)`` fallback warnings.

* **Differential (stub JIT)** — the numba op table built with a stub
  ``numba`` module whose ``njit`` is the identity decorator.  This runs
  the *real* fused kernels as pure Python, so the call-site wiring and
  the bit-identity contracts are exercised even on machines without any
  accelerator installed (exactly the tier-1 situation).

* **Differential (real JIT)** — the same contracts against the actual
  compiled kernels, skipped unless ``numba`` is importable (the CI
  ``accel`` job installs it).
"""

import sys
import types
import warnings

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.core.backends as backends
from repro.core.backends import (
    DEFAULT_KERNEL_BACKEND,
    KERNEL_BACKENDS,
    KERNEL_OPS,
    _reset_backend_state,
    backend_available,
    env_kernel_backend,
    get_kernel,
    kernel_backend_status,
    normalize_kernel_backend,
    resolve_kernel_backend,
)
from repro.core.generators import erdos_renyi_dag
from repro.core.kernels import propagate_moments
from repro.estimators.correlated import CorrelatedNormalEstimator
from repro.estimators.montecarlo import MonteCarloEstimator
from repro.estimators.sculli import SculliEstimator
from repro.exceptions import EstimationError, GraphError
from repro.failures.models import ExponentialErrorModel
from repro.sim.engine import MonteCarloEngine
from repro.workflows.registry import build_dag

#: Probed directly (uncached) so the skip marks never pollute the
#: module-level availability cache the resolution tests reset.
HAVE_NUMBA = backends._probe("numba")


@pytest.fixture
def clean_state():
    """Pristine backend caches before and after the test."""
    _reset_backend_state()
    yield
    _reset_backend_state()


@pytest.fixture
def stub_numba(monkeypatch):
    """A stand-in ``numba`` whose ``njit`` is the identity decorator.

    ``_build_numba_ops`` then returns its kernels as plain Python
    functions — the genuine fused loops, minus the compilation step.
    """
    fake = types.ModuleType("numba")

    def njit(*args, **kwargs):
        if args and callable(args[0]):
            return args[0]

        def decorate(fn):
            return fn

        return decorate

    fake.njit = njit
    _reset_backend_state()
    monkeypatch.setitem(sys.modules, "numba", fake)
    yield fake
    _reset_backend_state()


def _case(n=14, p=0.35, pfail=5e-3, seed=7):
    graph = erdos_renyi_dag(n, p, rng=np.random.default_rng(seed))
    model = ExponentialErrorModel.for_graph(graph, pfail)
    return graph, model


# ----------------------------------------------------------------------
# Resolution, validation, warnings
# ----------------------------------------------------------------------


class TestResolution:
    def test_normalize_accepts_known_names(self):
        for name in KERNEL_BACKENDS:
            assert normalize_kernel_backend(name) == name
        assert normalize_kernel_backend("  NumPy ") == "numpy"

    def test_normalize_rejects_unknown_names(self):
        with pytest.raises(GraphError):
            normalize_kernel_backend("fpga")

    def test_default_is_numpy(self, clean_state, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        assert resolve_kernel_backend() == DEFAULT_KERNEL_BACKEND

    def test_environment_wins_over_default(self, clean_state, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numba")
        assert resolve_kernel_backend() == "numba"

    def test_explicit_argument_wins_over_environment(self, clean_state, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numba")
        assert resolve_kernel_backend("cupy") == "cupy"

    def test_explicit_bad_name_is_strict(self, clean_state, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numba")
        with pytest.raises(GraphError):
            resolve_kernel_backend("tpu")

    def test_unrecognised_env_warns_once_and_falls_back(
        self, clean_state, monkeypatch
    ):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "gpuzilla")
        with pytest.warns(RuntimeWarning, match="gpuzilla"):
            assert env_kernel_backend() is None
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert env_kernel_backend() is None
            assert resolve_kernel_backend() == "numpy"

    def test_estimator_rejects_bad_backend(self):
        graph, model = _case(n=6)
        with pytest.raises(EstimationError):
            # The MC estimator resolves lazily, at engine construction.
            MonteCarloEstimator(trials=10, seed=0, kernel_backend="tpu").estimate(
                graph, model
            )
        with pytest.raises(EstimationError):
            CorrelatedNormalEstimator(kernel_backend="tpu")

    def test_numpy_backend_has_no_compiled_kernels(self, clean_state):
        for op in KERNEL_OPS:
            assert get_kernel(op, "numpy") is None

    def test_unknown_op_rejected(self, clean_state):
        with pytest.raises(GraphError):
            get_kernel("fft", "numpy")

    def test_numpy_always_available(self):
        assert backend_available("numpy") is True
        assert kernel_backend_status()["numpy"] is True

    def test_unavailable_backend_warns_once_per_op(self, clean_state, monkeypatch):
        monkeypatch.setattr(backends, "_probe", lambda name: name == "numpy")
        with pytest.warns(RuntimeWarning, match="backend unavailable"):
            assert get_kernel("propagate", "numba") is None
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            # Cached miss: no second warning for the same (backend, op).
            assert get_kernel("propagate", "numba") is None
        with pytest.warns(RuntimeWarning, match="backend unavailable"):
            assert get_kernel("moment_fold", "numba") is None

    def test_unported_op_warns_and_falls_back(self, clean_state, monkeypatch):
        monkeypatch.setattr(backends, "_probe", lambda name: True)
        monkeypatch.setattr(backends, "_build_cupy_ops", dict)
        with pytest.warns(RuntimeWarning, match="operation not ported"):
            assert get_kernel("band_gather", "cupy") is None

    def test_broken_builder_warns_and_falls_back(self, clean_state, monkeypatch):
        monkeypatch.setattr(backends, "_probe", lambda name: True)

        def boom():
            raise RuntimeError("no compiler")

        monkeypatch.setattr(backends, "_build_numba_ops", boom)
        with pytest.warns(RuntimeWarning, match="failed to initialise"):
            assert get_kernel("propagate", "numba") is None

    def test_estimators_report_backend_in_details(self):
        graph, model = _case(n=8)
        result = MonteCarloEstimator(trials=200, seed=1).estimate(graph, model)
        assert result.details["kernel_backend"] == "numpy"
        result = CorrelatedNormalEstimator().estimate(graph, model)
        assert result.details["kernel_backend"] == "numpy"


# ----------------------------------------------------------------------
# Differential tests against the stubbed (pure-Python) numba kernels
# ----------------------------------------------------------------------


class TestStubJitDifferential:
    def test_stub_backend_is_served(self, stub_numba):
        assert backend_available("numba") is True
        for op in KERNEL_OPS:
            assert get_kernel(op, "numba") is not None

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_mc_engine_bit_identical(self, stub_numba, dtype):
        graph, model = _case()
        kwargs = dict(trials=512, batch_size=128, seed=42, dtype=dtype,
                      keep_samples=True)
        ref = MonteCarloEngine(graph, model, kernel_backend="numpy", **kwargs).run()
        jit = MonteCarloEngine(graph, model, kernel_backend="numba", **kwargs).run()
        assert np.array_equal(ref.samples.samples(), jit.samples.samples())
        assert ref.mean == jit.mean

    def test_mc_engine_geometric_mode_unaffected(self, stub_numba):
        graph, model = _case(n=10)
        kwargs = dict(trials=256, batch_size=64, seed=3, mode="geometric",
                      keep_samples=True)
        ref = MonteCarloEngine(graph, model, kernel_backend="numpy", **kwargs).run()
        jit = MonteCarloEngine(graph, model, kernel_backend="numba", **kwargs).run()
        assert np.array_equal(ref.samples.samples(), jit.samples.samples())

    @pytest.mark.parametrize("backend,options", [
        ("banded", {}),
        ("banded", {"bandwidth": 1}),
        ("lowrank", {"bandwidth": 1, "rank": 4}),
    ])
    def test_correlated_gather_bit_identical(self, stub_numba, backend, options):
        graph, model = _case(n=16, p=0.3)
        ref = CorrelatedNormalEstimator(
            correlation_backend=backend, kernel_backend="numpy", **options
        ).estimate(graph, model)
        jit = CorrelatedNormalEstimator(
            correlation_backend=backend, kernel_backend="numba", **options
        ).estimate(graph, model)
        assert jit.expected_makespan == ref.expected_makespan
        assert jit.details["kernel_backend"] == "numba"

    def test_moment_fold_close(self, stub_numba):
        graph, model = _case(n=18, p=0.4)
        ref = SculliEstimator(kernel_backend="numpy").estimate(graph, model)
        jit = SculliEstimator(kernel_backend="numba").estimate(graph, model)
        rel = abs(jit.expected_makespan - ref.expected_makespan) / max(
            abs(ref.expected_makespan), 1.0
        )
        assert rel <= 1e-9

    def test_propagate_moments_fold_close(self, stub_numba):
        graph, _ = _case(n=20, p=0.35)
        rng = np.random.default_rng(11)
        mean = rng.uniform(0.5, 2.0, graph.num_tasks)
        var = rng.uniform(0.01, 0.2, graph.num_tasks)
        m_ref, v_ref = propagate_moments(graph, mean, var, kernel_backend="numpy")
        m_jit, v_jit = propagate_moments(graph, mean, var, kernel_backend="numba")
        np.testing.assert_allclose(m_jit, m_ref, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(v_jit, v_ref, rtol=1e-9, atol=1e-12)

    def test_runtime_kernel_failure_degrades_to_numpy(
        self, clean_state, monkeypatch
    ):
        def raising(*args, **kwargs):
            raise RuntimeError("typing failed")

        monkeypatch.setattr(backends, "_probe", lambda name: True)
        monkeypatch.setattr(
            backends,
            "_build_numba_ops",
            lambda: {op: raising for op in KERNEL_OPS},
        )
        graph, model = _case(n=10)
        ref = MonteCarloEstimator(trials=256, seed=5).estimate(graph, model)
        jit = MonteCarloEstimator(
            trials=256, seed=5, kernel_backend="numba"
        ).estimate(graph, model)
        assert jit.expected_makespan == ref.expected_makespan
        ref = CorrelatedNormalEstimator(correlation_backend="banded").estimate(
            graph, model
        )
        jit = CorrelatedNormalEstimator(
            correlation_backend="banded", kernel_backend="numba"
        ).estimate(graph, model)
        assert jit.expected_makespan == ref.expected_makespan
        m_ref, v_ref = propagate_moments(
            graph, np.ones(graph.num_tasks), np.full(graph.num_tasks, 0.1)
        )
        m_jit, v_jit = propagate_moments(
            graph,
            np.ones(graph.num_tasks),
            np.full(graph.num_tasks, 0.1),
            kernel_backend="numba",
        )
        assert np.array_equal(m_ref, m_jit)
        assert np.array_equal(v_ref, v_jit)

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        n=st.integers(min_value=2, max_value=18),
        p=st.floats(min_value=0.05, max_value=0.9),
        dtype=st.sampled_from(["float64", "float32"]),
        bandwidth=st.integers(min_value=0, max_value=4),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    def test_hypothesis_differential(self, stub_numba, n, p, dtype, bandwidth, seed):
        graph = erdos_renyi_dag(n, p, rng=np.random.default_rng(seed))
        model = ExponentialErrorModel.for_graph(graph, 1e-3)
        kwargs = dict(trials=128, batch_size=64, seed=seed, dtype=dtype,
                      keep_samples=True)
        ref = MonteCarloEngine(graph, model, kernel_backend="numpy", **kwargs).run()
        jit = MonteCarloEngine(graph, model, kernel_backend="numba", **kwargs).run()
        assert np.array_equal(ref.samples.samples(), jit.samples.samples())
        ref = CorrelatedNormalEstimator(
            correlation_backend="banded", bandwidth=bandwidth,
            kernel_backend="numpy",
        ).estimate(graph, model)
        jit = CorrelatedNormalEstimator(
            correlation_backend="banded", bandwidth=bandwidth,
            kernel_backend="numba",
        ).estimate(graph, model)
        assert jit.expected_makespan == ref.expected_makespan


# ----------------------------------------------------------------------
# Differential tests against the real compiled kernels (CI accel job)
# ----------------------------------------------------------------------


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
class TestRealJitDifferential:
    @pytest.fixture(autouse=True)
    def fresh(self, clean_state):
        yield

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    @pytest.mark.parametrize("workflow,size", [("cholesky", 5), ("lu", 4)])
    def test_mc_engine_bit_identical(self, dtype, workflow, size):
        graph = build_dag(workflow, size)
        model = ExponentialErrorModel.for_graph(graph, 1e-2)
        kwargs = dict(trials=2_048, batch_size=512, seed=9, dtype=dtype,
                      keep_samples=True)
        ref = MonteCarloEngine(graph, model, kernel_backend="numpy", **kwargs).run()
        jit = MonteCarloEngine(graph, model, kernel_backend="numba", **kwargs).run()
        assert np.array_equal(ref.samples.samples(), jit.samples.samples())

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        n=st.integers(min_value=2, max_value=24),
        p=st.floats(min_value=0.05, max_value=0.9),
        dtype=st.sampled_from(["float64", "float32"]),
        bandwidth=st.integers(min_value=0, max_value=5),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    def test_hypothesis_differential(self, n, p, dtype, bandwidth, seed):
        graph = erdos_renyi_dag(n, p, rng=np.random.default_rng(seed))
        model = ExponentialErrorModel.for_graph(graph, 1e-3)
        kwargs = dict(trials=256, batch_size=128, seed=seed, dtype=dtype,
                      keep_samples=True)
        ref = MonteCarloEngine(graph, model, kernel_backend="numpy", **kwargs).run()
        jit = MonteCarloEngine(graph, model, kernel_backend="numba", **kwargs).run()
        assert np.array_equal(ref.samples.samples(), jit.samples.samples())
        ref = CorrelatedNormalEstimator(
            correlation_backend="banded", bandwidth=bandwidth,
            kernel_backend="numpy",
        ).estimate(graph, model)
        jit = CorrelatedNormalEstimator(
            correlation_backend="banded", bandwidth=bandwidth,
            kernel_backend="numba",
        ).estimate(graph, model)
        assert jit.expected_makespan == ref.expected_makespan

    def test_moment_fold_close(self):
        graph = build_dag("qr", 5)
        rng = np.random.default_rng(17)
        mean = rng.uniform(0.5, 2.0, graph.num_tasks)
        var = rng.uniform(0.01, 0.2, graph.num_tasks)
        m_ref, v_ref = propagate_moments(graph, mean, var, kernel_backend="numpy")
        m_jit, v_jit = propagate_moments(graph, mean, var, kernel_backend="numba")
        np.testing.assert_allclose(m_jit, m_ref, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(v_jit, v_ref, rtol=1e-9, atol=1e-12)
