"""Differential tests for the level-wavefront analytical estimators.

PR 2 rewrote the sculli/sweep/correlated/second-order estimators (and the
scheduling priorities) on top of the moment/discrete level kernels.  Each
module retains its per-task sequential implementation as a reference; the
tests here assert that the vectorised paths reproduce the sequential
results to <= 1e-9 relative error across the workflow registry, and that
the threaded Monte Carlo scheduler with ``workers=1`` is bit-identical to
the pre-threading engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kernels import WavefrontKernel, propagate_moments
from repro.estimators.correlated import (
    CorrelatedNormalEstimator,
    sequential_correlated_estimate,
)
from repro.estimators.sculli import SculliEstimator, sequential_completion_moments
from repro.estimators.second_order import SecondOrderEstimator, sequential_pair_up_down
from repro.estimators.sweep import DiscreteSweepEstimator, sequential_sweep_estimate
from repro.failures.models import ExponentialErrorModel
from repro.failures.twostate import two_state_moment_vectors
from repro.rv.normal import NormalRV, clark_max
from repro.scheduling.priorities import (
    deterministic_bottom_levels,
    expected_bottom_levels_sculli,
    upward_ranks,
)
from repro.scheduling.platform import Platform
from repro.sim.engine import MonteCarloEngine
from repro.workflows.registry import build_dag

RTOL = 1e-9

#: One representative per DAG family of the registry: the paper's three
#: factorisations, the GEMM workflow and two synthetic families.
CASES = [
    ("cholesky", 6),
    ("lu", 5),
    ("qr", 4),
    ("gemm", 3),
    ("stencil", 6),
    ("mapreduce", 10),
]


def _rel(a: float, b: float) -> float:
    return abs(a - b) / max(abs(b), 1e-300)


@pytest.mark.parametrize("workflow,size", CASES)
@pytest.mark.parametrize("pfail", [1e-3, 1e-1])
class TestVectorisedMatchesSequential:
    def test_sculli(self, workflow, size, pfail):
        graph = build_dag(workflow, size)
        model = ExponentialErrorModel.for_graph(graph, pfail)
        index = graph.index()
        ref_mean, ref_var = sequential_completion_moments(index, model)
        task_mean, task_var = two_state_moment_vectors(index.weights, model)
        mean, var = propagate_moments(index, task_mean, task_var, direction="up")
        assert np.allclose(mean, ref_mean, rtol=RTOL, atol=0.0)
        assert np.allclose(var, ref_var, rtol=1e-7, atol=1e-18)

        est = SculliEstimator().estimate(graph, model)
        ref_makespan = NormalRV(ref_mean[index.sink_indices()[0]],
                                ref_var[index.sink_indices()[0]])
        for s in index.sink_indices()[1:]:
            ref_makespan = clark_max(
                ref_makespan, NormalRV(ref_mean[s], ref_var[s]), 0.0
            )
        assert _rel(est.expected_makespan, ref_makespan.mean) <= RTOL

    def test_sweep(self, workflow, size, pfail):
        graph = build_dag(workflow, size)
        model = ExponentialErrorModel.for_graph(graph, pfail)
        ref = sequential_sweep_estimate(graph, model, max_support=64)
        est = DiscreteSweepEstimator(max_support=64).estimate(graph, model)
        assert _rel(est.expected_makespan, ref.mean()) <= RTOL
        assert est.details["final_support"] == ref.support_size

    def test_correlated(self, workflow, size, pfail):
        graph = build_dag(workflow, size)
        model = ExponentialErrorModel.for_graph(graph, pfail)
        ref_mean, ref_var = sequential_correlated_estimate(graph, model)
        est = CorrelatedNormalEstimator().estimate(graph, model)
        assert _rel(est.expected_makespan, ref_mean) <= RTOL
        assert _rel(est.details["makespan_variance"], ref_var) <= 1e-7

    def test_second_order_pair_sweeps_bit_exact(self, workflow, size, pfail):
        graph = build_dag(workflow, size)
        index = graph.index()
        weights = index.weights.copy()
        doubled = min(3, index.num_tasks - 1)
        weights[doubled] *= 2.0
        up_ref, down_ref = sequential_pair_up_down(index, weights)
        kernel_up = WavefrontKernel(index, direction="up")
        kernel_up.load(weights[None, :])
        kernel_up.propagate(1)
        kernel_down = WavefrontKernel(index, direction="down")
        kernel_down.load(weights[None, :])
        kernel_down.propagate(1)
        assert np.array_equal(kernel_up.completion_matrix(1)[:, 0], up_ref)
        assert np.array_equal(kernel_down.completion_matrix(1)[:, 0], down_ref)


@pytest.mark.parametrize("workflow,size", [("cholesky", 4), ("lu", 4), ("stencil", 4)])
def test_second_order_estimate_matches_sequential_structure(workflow, size):
    """The chunked second-order estimate equals the per-task recomputation."""
    graph = build_dag(workflow, size)
    index = graph.index()
    model = ExponentialErrorModel.for_graph(graph, 1e-2)
    est = SecondOrderEstimator().estimate(graph, model)

    # Reference: the pre-kernel pair-term loop built on the sequential
    # up/down sweeps (same outer arithmetic as the estimator).
    from repro.core.paths import compute_path_metrics

    n = index.num_tasks
    weights = index.weights
    q = np.asarray(model.failure_probabilities(weights), dtype=np.float64)
    metrics = compute_path_metrics(index)
    d_g = metrics.critical_length
    d_single = metrics.doubled_makespans()
    one_minus_q = 1.0 - q
    log_all = float(np.sum(np.log(one_minus_q)))
    p_none = float(np.exp(log_all))
    p_single = q * np.exp(log_all - np.log(one_minus_q))
    expected = p_none * d_g + float(np.dot(p_single, d_single))
    covered = p_none + float(p_single.sum())
    base = np.exp(log_all - np.log(one_minus_q))
    pair_contribution = 0.0
    pair_probability = 0.0
    for i in range(n):
        w_i = weights.copy()
        w_i[i] *= 2.0
        up, down = sequential_pair_up_down(index, w_i)
        d_pair = np.maximum(d_single[i], up + down)
        p_pair = q[i] * q * base / one_minus_q[i]
        p_pair[i] = 0.0
        d_pair[i] = 0.0
        pair_contribution += float(np.dot(p_pair, d_pair))
        pair_probability += float(p_pair.sum())
    expected += 0.5 * pair_contribution
    covered += 0.5 * pair_probability
    expected += max(0.0, 1.0 - covered) * d_g

    assert _rel(est.expected_makespan, expected) <= RTOL


class TestPrioritiesOnKernels:
    """The four priority recurrences agree with per-task reference loops."""

    @pytest.mark.parametrize("workflow,size", [("cholesky", 5), ("qr", 4)])
    def test_deterministic_and_heft(self, workflow, size):
        graph = build_dag(workflow, size)
        index = graph.index()
        down = deterministic_bottom_levels(graph)
        ref = np.zeros(index.num_tasks)
        indptr, indices = index.succ_indptr, index.succ_indices
        for i in index.topo_order[::-1]:
            succs = indices[indptr[i] : indptr[i + 1]]
            ref[i] = index.weights[i] + (ref[succs].max() if succs.size else 0.0)
        assert all(down[tid] == ref[j] for j, tid in enumerate(index.task_ids))

        platform = Platform.homogeneous(4)
        model = ExponentialErrorModel.for_graph(graph, 1e-2)
        ranks = upward_ranks(graph, platform, model=model)
        for src, dst in graph.edges():
            assert ranks[src] > ranks[dst]

    @pytest.mark.parametrize("workflow,size", [("cholesky", 5), ("lu", 4)])
    def test_sculli_bottom_levels(self, workflow, size):
        graph = build_dag(workflow, size)
        index = graph.index()
        model = ExponentialErrorModel.for_graph(graph, 1e-2)
        levels = expected_bottom_levels_sculli(graph, model)
        # Reference: per-task backwards clark fold (pre-kernel loop).
        from repro.failures.twostate import TwoStateDistribution

        n = index.num_tasks
        mean = np.zeros(n)
        var = np.zeros(n)
        indptr, indices = index.succ_indptr, index.succ_indices
        for i in index.topo_order[::-1]:
            law = TwoStateDistribution.from_model(float(index.weights[i]), model)
            succs = indices[indptr[i] : indptr[i + 1]]
            if succs.size == 0:
                tail = NormalRV.degenerate(0.0)
            else:
                tail = NormalRV(mean[succs[0]], var[succs[0]])
                for s in succs[1:]:
                    tail = clark_max(tail, NormalRV(mean[s], var[s]), 0.0)
            total = tail.add_independent(NormalRV(law.mean, law.variance))
            mean[i] = total.mean
            var[i] = total.variance
        for j, tid in enumerate(index.task_ids):
            assert _rel(levels[tid], mean[j]) <= RTOL


class TestThreadedMonteCarloDeterminism:
    """workers=1 must preserve the PR 1 engine's exact sample stream."""

    @staticmethod
    def _pr1_reference_makespans(graph, model, trials, seed, batch_size):
        """The PR 1 pipeline, reproduced: one RNG stream, trial-major
        uniforms, fused two-state weights, wavefront kernel sweeps."""
        index = graph.index()
        rng = np.random.default_rng(seed)
        q = np.asarray(model.failure_probabilities(index.weights), dtype=np.float64)
        kernel = WavefrontKernel(index, direction="up")
        perm = kernel.perm
        w_rows = index.weights[perm][:, None]
        extra_rows = index.weights[perm][:, None]  # (factor - 1) * w with factor 2
        out = []
        remaining = trials
        while remaining > 0:
            batch = min(batch_size, remaining)
            uniform = rng.random((batch, index.num_tasks))
            mask = uniform.T < q[:, None]
            view = kernel.weight_view(batch)[:, :batch]
            np.multiply(mask[perm], extra_rows, out=view)
            view += w_rows
            kernel.propagate(batch)
            out.append(kernel.makespans(batch).copy())
            remaining -= batch
        return np.concatenate(out)

    def test_single_worker_bit_identical_to_pr1(self):
        graph = build_dag("cholesky", 5)
        model = ExponentialErrorModel.for_graph(graph, 2e-2)
        ref = self._pr1_reference_makespans(
            graph, model, trials=6_000, seed=99, batch_size=1_024
        )
        result = MonteCarloEngine(
            graph, model, trials=6_000, seed=99, batch_size=1_024,
            keep_samples=True, workers=1,
        ).run()
        # EmpiricalDistribution stores its sample sorted.
        assert np.array_equal(result.samples.samples(), np.sort(ref))
        assert result.minimum == ref.min()
        assert result.maximum == ref.max()
        assert result.mean == np.float64(
            MonteCarloEngine(
                graph, model, trials=6_000, seed=99, batch_size=1_024, workers=1
            ).run().mean
        )
        assert result.workers == 1

    def test_multi_worker_reproducible_and_consistent(self):
        graph = build_dag("lu", 5)
        model = ExponentialErrorModel.for_graph(graph, 1e-2)
        kwargs = dict(trials=12_000, batch_size=1_024, seed=7, keep_samples=True)
        a = MonteCarloEngine(graph, model, workers=3, **kwargs).run()
        b = MonteCarloEngine(graph, model, workers=3, **kwargs).run()
        assert np.array_equal(a.samples.samples(), b.samples.samples())
        assert a.trials == 12_000
        assert a.workers == 3

        single = MonteCarloEngine(graph, model, workers=1, **kwargs).run()
        # Different streams, same distribution: means agree to Monte Carlo
        # noise (a few standard errors).
        assert abs(a.mean - single.mean) <= 6.0 * (
            a.standard_error + single.standard_error
        )

    def test_multi_worker_early_stopping(self):
        graph = build_dag("cholesky", 4)
        model = ExponentialErrorModel.for_graph(graph, 1e-2)
        result = MonteCarloEngine(
            graph, model, trials=200_000, batch_size=2_048, seed=3,
            workers=2, target_relative_half_width=5e-3,
        ).run()
        assert result.trials < 200_000


class TestWorkerConfigResolution:
    def test_env_override(self, monkeypatch):
        from repro.experiments.config import monte_carlo_workers

        monkeypatch.delenv("REPRO_MC_WORKERS", raising=False)
        assert monte_carlo_workers() == 1
        assert monte_carlo_workers(3) == 3
        monkeypatch.setenv("REPRO_MC_WORKERS", "4")
        assert monte_carlo_workers() == 4
        assert monte_carlo_workers(2) == 4  # environment wins

    def test_env_validation(self, monkeypatch):
        from repro.exceptions import ExperimentError
        from repro.experiments.config import monte_carlo_workers

        monkeypatch.setenv("REPRO_MC_WORKERS", "zero")
        with pytest.raises(ExperimentError):
            monte_carlo_workers()
        monkeypatch.setenv("REPRO_MC_WORKERS", "0")
        with pytest.raises(ExperimentError):
            monte_carlo_workers()

    def test_config_properties(self):
        from repro.experiments.config import FigureConfig, ScalabilityConfig

        fig = FigureConfig(figure="t", workflow="lu", pfail=1e-3, mc_workers=2)
        assert fig.workers == 2
        tab = ScalabilityConfig(mc_workers=3)
        assert tab.workers == 3
        with pytest.raises(Exception):
            FigureConfig(figure="t", workflow="lu", pfail=1e-3, mc_workers=0)
