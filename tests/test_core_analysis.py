"""Unit tests for repro.core.analysis (graph profiles and statistics)."""

import pytest

from repro.core.analysis import analyze_graph, count_critical_paths, parallelism_profile
from repro.core.generators import chain_graph, independent_tasks
from repro.core.graph import TaskGraph
from repro.exceptions import GraphError
from repro.workflows.cholesky import cholesky_dag


class TestCountCriticalPaths:
    def test_chain_has_one(self):
        assert count_critical_paths(chain_graph(6, weight=1.0)) == 1

    def test_diamond_with_tie(self):
        g = TaskGraph()
        g.add_task("s", 1.0)
        g.add_task("a", 2.0)
        g.add_task("b", 2.0)
        g.add_task("t", 1.0)
        g.add_edges_from([("s", "a"), ("s", "b"), ("a", "t"), ("b", "t")])
        assert count_critical_paths(g) == 2

    def test_diamond_without_tie(self, diamond):
        assert count_critical_paths(diamond) == 1

    def test_independent_equal_tasks(self):
        g = independent_tasks(5, weight=2.0)
        assert count_critical_paths(g) == 5

    def test_grid_counts_binomial(self):
        from repro.core.generators import diamond_mesh

        # In a 3x3 unit-weight grid every monotone path is critical:
        # C(4, 2) = 6 paths.
        g = diamond_mesh(3, 3, weight=1.0)
        assert count_critical_paths(g) == 6

    def test_empty_graph(self):
        assert count_critical_paths(TaskGraph()) == 0


class TestParallelismProfile:
    def test_chain_profile(self):
        profile = parallelism_profile(chain_graph(4, weight=2.0))
        assert profile == {0: 2.0, 1: 2.0, 2: 2.0, 3: 2.0}

    def test_diamond_profile(self, diamond):
        profile = parallelism_profile(diamond)
        assert profile[0] == pytest.approx(1.0)
        assert profile[1] == pytest.approx(6.0)
        assert profile[2] == pytest.approx(1.0)


class TestAnalyzeGraph:
    def test_chain(self):
        profile = analyze_graph(chain_graph(5, weight=1.0))
        assert profile.depth == 5
        assert profile.width == 1
        assert profile.average_parallelism == pytest.approx(1.0)
        assert profile.series_parallel
        assert profile.num_critical_paths == 1
        assert profile.critical_path_tasks == 5
        assert profile.num_critical_tasks == 5

    def test_cholesky(self):
        graph = cholesky_dag(6)
        profile = analyze_graph(graph)
        assert profile.num_tasks == graph.num_tasks
        assert profile.total_work == pytest.approx(graph.total_weight())
        assert not profile.series_parallel
        assert profile.average_parallelism > 1.0
        assert profile.width >= profile.average_parallelism / 2
        assert profile.max_in_degree >= 2
        assert profile.num_critical_tasks >= profile.critical_path_tasks
        as_dict = profile.as_dict()
        assert as_dict["name"] == graph.name
        assert as_dict["series_parallel"] is False

    def test_diamond(self, diamond):
        profile = analyze_graph(diamond)
        assert profile.depth == 3
        assert profile.width == 2
        assert profile.series_parallel
        # only s, right, t are critical (left has slack)
        assert profile.num_critical_tasks == 3

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            analyze_graph(TaskGraph())

    def test_skip_series_parallel_check(self, cholesky4):
        profile = analyze_graph(cholesky4, check_series_parallel=False)
        assert profile.series_parallel is False
