"""Unit tests for the tiled GEMM workflow (extension workload)."""

import pytest

from repro.core.analysis import analyze_graph
from repro.core.paths import critical_path_length
from repro.core.seriesparallel import is_series_parallel
from repro.core.validation import ensure_valid
from repro.estimators.exact import ExactEstimator
from repro.estimators.first_order import FirstOrderEstimator
from repro.estimators.sculli import SculliEstimator
from repro.exceptions import GraphError
from repro.failures.models import ExponentialErrorModel
from repro.workflows.gemm import gemm_dag, gemm_task_count
from repro.workflows.kernels import DEFAULT_TIMINGS
from repro.workflows.registry import build_dag


class TestStructure:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_task_count(self, k):
        assert gemm_dag(k).num_tasks == gemm_task_count(k) == k**3

    def test_chains_per_output_tile(self):
        g = gemm_dag(3)
        ensure_valid(g)
        assert g.has_edge("GEMM_1_2_0", "GEMM_1_2_1")
        assert g.has_edge("GEMM_1_2_1", "GEMM_1_2_2")
        assert not g.has_edge("GEMM_0_0_0", "GEMM_1_1_1")
        # k^2 independent chains of length k.
        assert len(g.sources()) == 9
        assert len(g.sinks()) == 9

    def test_series_parallel(self):
        assert is_series_parallel(gemm_dag(3))

    def test_critical_path_is_one_chain(self):
        k = 4
        g = gemm_dag(k)
        assert critical_path_length(g) == pytest.approx(k * DEFAULT_TIMINGS.time("GEMM"))

    def test_profile(self):
        profile = analyze_graph(gemm_dag(3))
        assert profile.average_parallelism == pytest.approx(9.0)
        assert profile.depth == 3
        assert profile.width == 9

    def test_registry_and_validation(self):
        assert build_dag("gemm", 2).num_tasks == 8
        with pytest.raises(GraphError):
            gemm_dag(0)


class TestEstimatorsOnRegularWorkload:
    def test_all_estimators_agree_on_small_gemm(self):
        """On this regular, series-parallel workload every method should be
        accurate (the control case complementing the factorization DAGs)."""
        g = gemm_dag(2)  # 8 tasks: exact enumeration feasible
        model = ExponentialErrorModel.for_graph(g, 0.01)
        exact = ExactEstimator().estimate(g, model).expected_makespan
        first = FirstOrderEstimator().estimate(g, model).expected_makespan
        sculli = SculliEstimator().estimate(g, model).expected_makespan
        assert first == pytest.approx(exact, rel=2e-3)
        # Sculli replaces two-point laws by normals, which is coarse on such
        # a tiny graph; a few percent is the expected ballpark.
        assert sculli == pytest.approx(exact, rel=5e-2)
