"""Unit tests for repro.failures (models, calibration, two-state laws, DVFS)."""

import math

import numpy as np
import pytest

from repro.failures.dvfs import DvfsErrorModel, EnergyModel, speed_sweep
from repro.failures.models import (
    ExponentialErrorModel,
    FixedProbabilityModel,
    calibrate_lambda,
    pfail_from_lambda,
)
from repro.failures.twostate import (
    TwoStateDistribution,
    geometric_expected_time,
    two_state_table,
)
from repro.exceptions import ModelError


class TestCalibration:
    def test_calibration_solves_pfail_equation(self):
        lam = calibrate_lambda(0.01, 0.15)
        assert 1.0 - math.exp(-lam * 0.15) == pytest.approx(0.01)

    def test_paper_numbers(self):
        # Section V-C: ā = 0.15 s and p_fail = 0.01 give λ ≈ 0.067 and an MTBF
        # of ≈ 14.9 seconds.
        lam = calibrate_lambda(0.01, 0.15)
        assert lam == pytest.approx(0.067, rel=0.01)
        assert 1.0 / lam == pytest.approx(14.9, rel=0.01)

    def test_paper_per_processor_mtbf(self):
        # With 100,000 processors this corresponds to an individual MTBF of
        # about 17.27 days (Section V-C).
        model = ExponentialErrorModel.from_pfail(0.01, 0.15)
        days = model.per_processor_mtbf(100_000) / 86_400.0
        assert days == pytest.approx(17.27, rel=0.02)

    def test_zero_pfail(self):
        assert calibrate_lambda(0.0, 0.15) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ModelError):
            calibrate_lambda(1.0, 0.15)
        with pytest.raises(ModelError):
            calibrate_lambda(-0.1, 0.15)
        with pytest.raises(ModelError):
            calibrate_lambda(0.01, 0.0)

    def test_pfail_from_lambda(self):
        assert pfail_from_lambda(0.0, 1.0) == 0.0
        assert pfail_from_lambda(2.0, 0.5) == pytest.approx(1.0 - math.exp(-1.0))


class TestExponentialModel:
    def test_failure_probability_monotone_in_weight(self):
        model = ExponentialErrorModel(0.1)
        probs = [model.failure_probability(w) for w in (0.0, 0.5, 1.0, 5.0)]
        assert probs[0] == 0.0
        assert probs == sorted(probs)

    def test_vectorised_matches_scalar(self):
        model = ExponentialErrorModel(0.05)
        weights = np.array([0.0, 0.1, 1.0, 10.0])
        vec = model.failure_probabilities(weights)
        scalar = [model.failure_probability(w) for w in weights]
        assert vec == pytest.approx(scalar)

    def test_from_mtbf(self):
        model = ExponentialErrorModel.from_mtbf(20.0)
        assert model.error_rate == pytest.approx(0.05)
        assert model.mtbf == pytest.approx(20.0)

    def test_for_graph_uses_mean_weight(self, cholesky4):
        model = ExponentialErrorModel.for_graph(cholesky4, 0.001)
        mean_pfail = model.failure_probability(cholesky4.mean_weight())
        assert mean_pfail == pytest.approx(0.001)

    def test_zero_rate_model(self):
        model = ExponentialErrorModel(0.0)
        assert model.failure_probability(100.0) == 0.0
        assert model.mtbf == math.inf

    def test_scaled(self):
        assert ExponentialErrorModel(0.01).scaled(10).error_rate == pytest.approx(0.1)

    def test_expected_executions(self):
        model = ExponentialErrorModel(1.0)
        assert model.expected_executions(0.0) == 1.0
        assert model.expected_executions(1.0) == pytest.approx(math.e)

    def test_expected_task_time_two_state_vs_geometric(self):
        model = ExponentialErrorModel(0.5)
        a = 1.0
        q = model.failure_probability(a)
        two_state = model.expected_task_time(a, max_reexecutions=1)
        assert two_state == pytest.approx((1 - q) * a + q * 2 * a)
        geometric = model.expected_task_time(a, max_reexecutions=None)
        assert geometric == pytest.approx(a / (1 - q))
        assert geometric > two_state

    def test_invalid_construction(self):
        with pytest.raises(ModelError):
            ExponentialErrorModel(-1.0)
        with pytest.raises(ModelError):
            ExponentialErrorModel.from_mtbf(0.0)


class TestFixedModel:
    def test_constant_probability(self):
        model = FixedProbabilityModel(0.2)
        assert model.failure_probability(0.01) == 0.2
        assert model.failure_probability(100.0) == 0.2
        assert model.failure_probability(0.0) == 0.0  # nothing to corrupt

    def test_validation(self):
        with pytest.raises(ModelError):
            FixedProbabilityModel(1.0)
        with pytest.raises(ModelError):
            FixedProbabilityModel(-0.01)


class TestTwoState:
    def test_moments(self):
        law = TwoStateDistribution(nominal=1.0, reexecuted=2.0, pfail=0.25)
        assert law.mean == pytest.approx(0.75 * 1.0 + 0.25 * 2.0)
        assert law.variance == pytest.approx(0.25 * 0.75 * 1.0)
        assert law.std == pytest.approx(math.sqrt(law.variance))
        assert law.second_moment == pytest.approx(0.75 * 1.0 + 0.25 * 4.0)

    def test_from_model(self):
        model = ExponentialErrorModel(0.1)
        law = TwoStateDistribution.from_model(2.0, model)
        assert law.nominal == 2.0
        assert law.reexecuted == 4.0
        assert law.pfail == pytest.approx(model.failure_probability(2.0))

    def test_degenerate_cases(self):
        never = TwoStateDistribution(1.0, 2.0, 0.0)
        assert never.support().tolist() == [1.0]
        always = TwoStateDistribution(1.0, 2.0, 1.0)
        assert always.support().tolist() == [2.0]
        assert always.variance == 0.0

    def test_to_discrete_preserves_moments(self):
        law = TwoStateDistribution(0.15, 0.30, 0.01)
        rv = law.to_discrete()
        assert rv.mean() == pytest.approx(law.mean)
        assert rv.variance() == pytest.approx(law.variance)

    def test_sampling_frequency(self, rng):
        law = TwoStateDistribution(1.0, 2.0, 0.3)
        samples = law.sample(rng, size=200_000)
        assert samples.mean() == pytest.approx(law.mean, rel=5e-3)

    def test_validation(self):
        with pytest.raises(ModelError):
            TwoStateDistribution(2.0, 1.0, 0.5)  # re-executed < nominal
        with pytest.raises(ModelError):
            TwoStateDistribution(1.0, 2.0, 1.5)

    def test_table_for_graph(self, diamond):
        model = ExponentialErrorModel(0.1)
        table = two_state_table(diamond, model)
        assert set(table) == set(diamond.task_ids())
        assert table["right"].nominal == pytest.approx(4.0)

    def test_geometric_expected_time(self):
        model = ExponentialErrorModel(0.5)
        expected = geometric_expected_time(1.0, model)
        assert expected == pytest.approx(1.0 / math.exp(-0.5))


class TestDvfs:
    def make(self):
        return DvfsErrorModel(lambda0=1e-6, sensitivity=3.0, smin=0.4, smax=1.0)

    def test_rate_at_extremes(self):
        dvfs = self.make()
        assert dvfs.error_rate(1.0) == pytest.approx(1e-6)
        # At minimum speed the rate is multiplied by 10^d.
        assert dvfs.error_rate(0.4) == pytest.approx(1e-6 * 10**3)
        assert dvfs.max_rate() == pytest.approx(1e-6 * 1000)

    def test_rate_monotonically_decreasing_in_speed(self):
        dvfs = self.make()
        speeds = np.linspace(0.4, 1.0, 20)
        rates = dvfs.error_rates(speeds)
        assert np.all(np.diff(rates) < 0)

    def test_out_of_range_speed(self):
        dvfs = self.make()
        with pytest.raises(ModelError):
            dvfs.error_rate(0.2)
        with pytest.raises(ModelError):
            dvfs.error_rate(1.2)

    def test_model_at_returns_exponential(self):
        dvfs = self.make()
        model = dvfs.model_at(0.7)
        assert isinstance(model, ExponentialErrorModel)
        assert model.error_rate == pytest.approx(dvfs.error_rate(0.7))

    def test_slowdown(self):
        assert self.make().slowdown(0.5) == pytest.approx(2.0)

    def test_energy_model(self):
        energy = EnergyModel(static_power=0.1, kappa=1.0, smax=1.0)
        # Full speed: power 1.1, duration 1 -> energy 1.1.
        assert energy.energy(1.0, 1.0) == pytest.approx(1.1)
        # Half speed: power 0.1 + 0.125 = 0.225, duration 2 -> 0.45.
        assert energy.energy(1.0, 0.5) == pytest.approx(0.45)

    def test_speed_sweep(self):
        points = speed_sweep(self.make(), num_points=7)
        assert len(points) == 7
        assert points[0][0] == pytest.approx(0.4)
        assert points[-1][0] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ModelError):
            DvfsErrorModel(1e-6, -1.0, 0.4, 1.0)
        with pytest.raises(ModelError):
            DvfsErrorModel(1e-6, 3.0, 1.0, 0.4)
        with pytest.raises(ModelError):
            EnergyModel(-1.0, 1.0, 1.0)
