"""Unit tests for repro.workflows (kernel timings, Cholesky/LU/QR DAGs, synthetic)."""

import pytest

from repro.core.validation import ensure_valid
from repro.exceptions import GraphError, ModelError
from repro.workflows.cholesky import cholesky_dag, cholesky_task_count
from repro.workflows.kernels import (
    DEFAULT_TILE_SIZE,
    DEFAULT_TIMINGS,
    KernelTimings,
    default_timings,
    kernel_flops,
)
from repro.workflows.lu import lu_dag, lu_task_count
from repro.workflows.qr import qr_dag, qr_task_count
from repro.workflows.registry import (
    PAPER_SIZES,
    PAPER_WORKFLOWS,
    available_workflows,
    build_dag,
    get_workflow,
)
from repro.workflows.synthetic import (
    map_reduce,
    reduction_tree,
    stencil_sweep,
    strassen_like_recursion,
    wavefront,
)


class TestKernelTimings:
    def test_flop_counts_relative_costs(self):
        b = DEFAULT_TILE_SIZE
        assert kernel_flops("GEMM", b) == pytest.approx(2 * b**3)
        assert kernel_flops("POTRF", b) == pytest.approx(b**3 / 3)
        # Section V-B: QR update kernels cost about twice their LU counterparts.
        assert kernel_flops("TSMQR", b) == pytest.approx(2 * kernel_flops("GEMM", b))
        assert kernel_flops("UNMQR", b) == pytest.approx(2 * kernel_flops("TRSMU", b))

    def test_unknown_kernel(self):
        with pytest.raises(ModelError):
            kernel_flops("FFT")
        with pytest.raises(ModelError):
            DEFAULT_TIMINGS.time("FFT")

    def test_default_timings_positive(self):
        for kernel, seconds in default_timings().items():
            assert seconds > 0, kernel

    def test_average_task_weight_close_to_paper(self):
        """The substitute timing model targets the paper's ā ≈ 0.15 s over
        the fifteen evaluation DAGs."""
        total, count = 0.0, 0
        for k in PAPER_SIZES:
            for builder in (cholesky_dag, lu_dag, qr_dag):
                g = builder(k)
                total += g.total_weight()
                count += g.num_tasks
        mean = total / count
        assert 0.10 <= mean <= 0.20

    def test_scaled_and_custom_timings(self):
        doubled = DEFAULT_TIMINGS.scaled(2.0)
        assert doubled.time("GEMM") == pytest.approx(2 * DEFAULT_TIMINGS.time("GEMM"))
        custom = KernelTimings({"potrf": 0.1, "TRSM": 0.2, "SYRK": 0.2, "GEMM": 0.4})
        assert custom.time("POTRF") == 0.1
        assert "GEMM" in custom
        g = cholesky_dag(3, timings=custom)
        assert g.weight("GEMM_2_1_0") == pytest.approx(0.4)

    def test_invalid_timings(self):
        with pytest.raises(ModelError):
            KernelTimings({"GEMM": -1.0})
        with pytest.raises(ModelError):
            KernelTimings.default(tile_size=-5)


class TestCholesky:
    @pytest.mark.parametrize("k", [1, 2, 4, 6, 12])
    def test_task_count_formula(self, k):
        assert cholesky_dag(k).num_tasks == cholesky_task_count(k)

    def test_k5_matches_paper_figure(self):
        """Figure 1 of the paper shows the k = 5 DAG: 35 tasks with the
        labels POTRF_j / TRSM_i_j / SYRK_i_j / GEMM_i_l_j."""
        g = cholesky_dag(5)
        assert g.num_tasks == 35
        for label in ("POTRF_4", "TRSM_4_2", "SYRK_3_0", "GEMM_4_2_1", "GEMM_4_3_0"):
            assert label in g
        assert g.task("GEMM_4_2_1").kernel == "GEMM"

    def test_dependency_pattern(self):
        g = cholesky_dag(5)
        assert g.has_edge("POTRF_0", "TRSM_3_0")
        assert g.has_edge("TRSM_3_0", "SYRK_3_0")
        assert g.has_edge("SYRK_1_0", "POTRF_1")
        assert g.has_edge("TRSM_4_1", "GEMM_4_2_1")
        assert g.has_edge("TRSM_2_1", "GEMM_4_2_1")
        assert g.has_edge("GEMM_4_2_0", "GEMM_4_2_1")
        assert g.has_edge("GEMM_4_2_1", "TRSM_4_2")

    def test_structure_is_valid_dag(self):
        for k in (2, 6, 8):
            g = cholesky_dag(k)
            ensure_valid(g)
            assert g.sources() == ["POTRF_0"]
            assert g.sinks()[-1] == f"POTRF_{k - 1}" or f"POTRF_{k - 1}" in g.sinks()

    def test_invalid_size(self):
        with pytest.raises(GraphError):
            cholesky_dag(0)


class TestLuQr:
    @pytest.mark.parametrize("k", [1, 2, 4, 8, 12])
    def test_task_count_formula(self, k):
        assert lu_dag(k).num_tasks == lu_task_count(k)
        assert qr_dag(k).num_tasks == qr_task_count(k)

    def test_paper_quoted_sizes(self):
        # Section V-B / V-E: 650 tasks at k = 12 and 2,870 tasks at k = 20.
        assert lu_task_count(12) == 650
        assert qr_task_count(12) == 650
        assert lu_task_count(20) == 2870

    def test_lu_k5_labels_match_figure2(self):
        g = lu_dag(5)
        for label in ("GETRF_0", "TRSML_4_1", "TRSMU_1_3", "GEMM_3_4_2", "GEMM_1_2_0"):
            assert label in g

    def test_qr_k5_labels_match_figure3(self):
        g = qr_dag(5)
        for label in ("GEQRT_2", "TSQRT_3_1", "UNMQR_1_3", "TSMQR_3_4_2", "TSMQR_4_4_3"):
            assert label in g

    def test_lu_dependencies(self):
        g = lu_dag(4)
        assert g.has_edge("GETRF_0", "TRSML_2_0")
        assert g.has_edge("GETRF_0", "TRSMU_0_2")
        assert g.has_edge("TRSML_2_0", "GEMM_2_3_0")
        assert g.has_edge("TRSMU_0_3", "GEMM_2_3_0")
        assert g.has_edge("GEMM_1_1_0", "GETRF_1")
        assert g.has_edge("GEMM_2_3_0", "GEMM_2_3_1")

    def test_qr_dependencies(self):
        g = qr_dag(4)
        assert g.has_edge("GEQRT_0", "TSQRT_1_0")
        assert g.has_edge("TSQRT_1_0", "TSQRT_2_0")  # flat-tree chaining
        assert g.has_edge("TSQRT_2_0", "TSMQR_2_3_0")
        assert g.has_edge("UNMQR_0_3", "TSMQR_1_3_0")
        assert g.has_edge("TSMQR_1_3_0", "TSMQR_2_3_0")
        assert g.has_edge("TSMQR_1_1_0", "GEQRT_1")

    def test_single_source(self):
        assert lu_dag(6).sources() == ["GETRF_0"]
        assert qr_dag(6).sources() == ["GEQRT_0"]

    def test_valid_dags(self):
        for k in (2, 5, 8):
            ensure_valid(lu_dag(k))
            ensure_valid(qr_dag(k))

    def test_qr_heavier_than_lu(self):
        # QR performs about twice the flops of LU on the same matrix.
        assert qr_dag(8).total_weight() > 1.5 * lu_dag(8).total_weight()

    def test_invalid_size(self):
        with pytest.raises(GraphError):
            lu_dag(0)
        with pytest.raises(GraphError):
            qr_dag(-1)


class TestSyntheticAndRegistry:
    def test_stencil(self):
        g = stencil_sweep(6, 4, task_time=1.0)
        ensure_valid(g)
        assert g.num_tasks == 24
        # dependency on previous step neighbours
        assert g.has_edge("S0_2", "S1_2")
        assert g.has_edge("S0_1", "S1_2")
        assert g.has_edge("S0_3", "S1_2")

    def test_reduction_tree(self):
        g = reduction_tree(8, arity=2, leaf_time=1.0, combine_time=0.5)
        ensure_valid(g)
        assert len(g.sinks()) == 1
        # 8 leaves + 4 + 2 + 1 combines
        assert g.num_tasks == 15

    def test_map_reduce(self):
        g = map_reduce(6)
        ensure_valid(g)
        assert g.sources() == ["scatter"]
        assert len(g.sinks()) == 1

    def test_wavefront(self):
        g = wavefront(4, 5, task_time=1.0)
        assert g.num_tasks == 20

    def test_strassen(self):
        g = strassen_like_recursion(2, fanout=3)
        ensure_valid(g)
        assert len(g.sources()) == 1 and len(g.sinks()) == 1
        # depth 2, fanout 3: 9 leaves + 2*(1 + 3) split/combine pairs
        assert g.num_tasks == 9 + 2 * 4

    def test_registry(self):
        assert set(PAPER_WORKFLOWS) <= set(available_workflows())
        g = build_dag("cholesky", 4)
        assert g.num_tasks == cholesky_task_count(4)
        assert get_workflow("lu") is lu_dag
        with pytest.raises(GraphError):
            build_dag("not-a-workflow", 3)
