"""Differential tests of the correlation-storage backends.

Contracts (see :mod:`repro.estimators.correlation`):

* ``banded`` (and ``lowrank``) are **bit-identical** to ``dense`` whenever
  the bandwidth covers the exact bandwidth of the schedule — the max edge
  level span joined with the sinks' level spread — which is what the
  default ``bandwidth=None`` resolves to;
* below the exact bandwidth the approximation error is bounded and shrinks
  monotonically as the bandwidth grows;
* the ``lowrank`` Nyström factor never does worse than plain dropping
  (the banded error) by more than a sliver, and improves with rank in the
  low-rank regime;
* the memory guard refuses over-budget stores *before* allocating, naming
  the selected backend and the bandwidth that would fit.
"""

import numpy as np
import pytest

from repro.core.kernels import schedule_for
from repro.estimators.correlated import CorrelatedNormalEstimator, sequential_correlated_estimate
from repro.estimators.correlation import (
    BandedCorrelationStore,
    DenseCorrelationStore,
    LowRankCorrelationStore,
    exact_bandwidth,
    largest_feasible_bandwidth,
    projected_store_bytes,
    _nested_landmarks,
)
from repro.exceptions import EstimationError, ReproError
from repro.failures.models import ExponentialErrorModel
from repro.workflows.registry import build_dag

#: The DAG families of the paper's figure suite plus the extra workloads.
CASES = [
    ("cholesky", 8, 1e-2),
    ("lu", 6, 1e-2),
    ("qr", 6, 1e-3),
    ("gemm", 5, 1e-2),
    ("stencil", 6, 5e-2),
    ("mapreduce", 8, 1e-2),
]


@pytest.fixture(scope="module")
def estimates():
    """Dense reference estimates, one per workflow case."""
    out = {}
    for workflow, size, pfail in CASES:
        graph = build_dag(workflow, size)
        model = ExponentialErrorModel.for_graph(graph, pfail)
        dense = CorrelatedNormalEstimator(correlation_backend="dense").estimate(
            graph, model
        )
        out[workflow] = (graph, model, dense)
    return out


def _run(graph, model, **kwargs):
    return CorrelatedNormalEstimator(**kwargs).estimate(graph, model)


class TestBitEquality:
    @pytest.mark.parametrize("workflow,size,pfail", CASES)
    @pytest.mark.parametrize("backend", ["banded", "lowrank"])
    def test_auto_bandwidth_bit_equal_to_dense(
        self, workflow, size, pfail, backend, estimates
    ):
        graph, model, dense = estimates[workflow]
        result = _run(graph, model, correlation_backend=backend)
        assert result.expected_makespan == dense.expected_makespan
        assert result.details["makespan_variance"] == dense.details["makespan_variance"]

    @pytest.mark.parametrize("workflow,size,pfail", CASES[:3])
    def test_over_wide_band_still_bit_equal(self, workflow, size, pfail, estimates):
        graph, model, dense = estimates[workflow]
        schedule = schedule_for(graph.index(), "up")
        sink_rows = schedule.rank[graph.index().sink_indices()]
        wide = exact_bandwidth(schedule, sink_rows) + 3
        result = _run(
            graph, model, correlation_backend="banded", bandwidth=wide
        )
        assert result.expected_makespan == dense.expected_makespan

    @pytest.mark.parametrize("workflow,size,pfail", CASES[:2])
    def test_dense_matches_sequential_reference(self, workflow, size, pfail, estimates):
        graph, model, dense = estimates[workflow]
        seq_mean, seq_var = sequential_correlated_estimate(graph, model)
        assert dense.expected_makespan == pytest.approx(seq_mean, rel=1e-9)
        assert dense.details["makespan_variance"] == pytest.approx(
            seq_var, rel=1e-9, abs=1e-15
        )


class TestApproximationError:
    @pytest.mark.parametrize("workflow,size,pfail", CASES)
    @pytest.mark.parametrize("backend", ["banded", "lowrank"])
    def test_error_bounded_and_monotone_in_bandwidth(
        self, workflow, size, pfail, backend, estimates
    ):
        graph, model, dense = estimates[workflow]
        reference = dense.expected_makespan
        schedule = schedule_for(graph.index(), "up")
        sink_rows = schedule.rank[graph.index().sink_indices()]
        exact = exact_bandwidth(schedule, sink_rows)
        errors = []
        for bandwidth in range(exact + 1):
            value = _run(
                graph, model, correlation_backend=backend, bandwidth=bandwidth
            ).expected_makespan
            errors.append(abs(value - reference) / abs(reference))
        # Bounded: even the narrowest band stays within a few percent of
        # dense on the paper's DAG families at these failure rates.
        assert max(errors) < 0.05
        # Monotone: widening the band never makes the estimate worse
        # (beyond floating-point noise).
        for narrow, wide in zip(errors, errors[1:]):
            assert wide <= narrow + 1e-12
        # At the exact bandwidth the error is identically zero.
        exact_value = _run(
            graph, model, correlation_backend=backend, bandwidth=exact
        ).expected_makespan
        assert exact_value == reference

    @pytest.mark.parametrize("workflow,size,pfail", CASES)
    def test_lowrank_not_worse_than_banded(self, workflow, size, pfail, estimates):
        graph, model, dense = estimates[workflow]
        reference = dense.expected_makespan
        banded = _run(
            graph, model, correlation_backend="banded", bandwidth=0
        ).expected_makespan
        lowrank = _run(
            graph, model, correlation_backend="lowrank", bandwidth=0, rank=8
        ).expected_makespan
        banded_err = abs(banded - reference) / abs(reference)
        lowrank_err = abs(lowrank - reference) / abs(reference)
        assert lowrank_err <= banded_err * 1.05 + 1e-12

    @pytest.mark.parametrize("workflow,size,pfail", [CASES[0], CASES[1]])
    def test_lowrank_error_shrinks_with_rank(self, workflow, size, pfail, estimates):
        """More landmarks help (within the low-rank regime; 5% slack
        tolerates the plateaus of the Nyström approximation)."""
        graph, model, dense = estimates[workflow]
        reference = dense.expected_makespan
        bandwidth = 1 if workflow == "cholesky" else 0
        errors = []
        for rank in (1, 2, 4, 8):
            value = _run(
                graph, model, correlation_backend="lowrank",
                bandwidth=bandwidth, rank=rank,
            ).expected_makespan
            errors.append(abs(value - reference) / abs(reference))
        for low, high in zip(errors, errors[1:]):
            assert high <= low * 1.05 + 1e-9
        assert errors[-1] < errors[0]

    def test_lowrank_monotone_beyond_rank_16(self):
        """The symmetric landmark refresh keeps the rank knob monotone
        past ~16 instead of saturating back towards the banded error
        (before the refresh the Nyström kernel averaged fresh landmark
        pairs with their stale initialisation, so adding late landmarks
        *hurt*)."""
        graph = build_dag("cholesky", 10)
        model = ExponentialErrorModel.for_graph(graph, 1e-2)
        reference = _run(
            graph, model, correlation_backend="dense"
        ).expected_makespan
        errors = []
        for rank in (16, 32, 64, 128):
            value = _run(
                graph, model, correlation_backend="lowrank",
                bandwidth=1, rank=rank,
            ).expected_makespan
            errors.append(abs(value - reference) / abs(reference))
        for low, high in zip(errors, errors[1:]):
            assert high <= low * 1.10 + 1e-12, errors
        assert errors[-1] < 0.75 * errors[0], errors

    def test_lowrank_full_rank_recovers_dense(self, estimates):
        """With every row a landmark the refreshed factor tracks the whole
        consumed correlation history: the estimate collapses onto dense."""
        graph, model, dense = estimates["cholesky"]
        value = _run(
            graph, model, correlation_backend="lowrank",
            bandwidth=1, rank=graph.num_tasks,
        ).expected_makespan
        assert value == pytest.approx(dense.expected_makespan, rel=1e-6)


class TestParallelFold:
    """The per-level fold on the execution service is worker-invariant."""

    @pytest.mark.parametrize("workflow,size,pfail", [CASES[0], CASES[1], CASES[4]])
    @pytest.mark.parametrize("backend", ["dense", "banded"])
    def test_bit_identical_at_any_worker_count(
        self, workflow, size, pfail, backend, estimates
    ):
        graph, model, _ = estimates[workflow]
        results = [
            _run(graph, model, correlation_backend=backend, workers=k)
            for k in (1, 2, 4)
        ]
        assert len({r.expected_makespan for r in results}) == 1
        assert len({r.details["makespan_variance"] for r in results}) == 1

    def test_lowrank_worker_invariant(self, estimates):
        graph, model, _ = estimates["cholesky"]
        one = _run(
            graph, model, correlation_backend="lowrank", workers=1
        ).expected_makespan
        four = _run(
            graph, model, correlation_backend="lowrank", workers=4
        ).expected_makespan
        assert four == pytest.approx(one, rel=1e-12)

    def test_workers_validation(self):
        with pytest.raises(EstimationError):
            CorrelatedNormalEstimator(workers=0)


class TestStores:
    def test_banded_symmetric_reads(self, cholesky4):
        index = cholesky4.index()
        schedule = schedule_for(index, "up")
        dense = DenseCorrelationStore(schedule)
        banded = BandedCorrelationStore(schedule, schedule.num_levels)
        n = schedule.num_tasks
        rng = np.random.default_rng(0)
        # Write one level through both stores and compare arbitrary reads.
        level = 1
        t_lo, t_hi = int(schedule.level_indptr[1]), int(schedule.level_indptr[2])
        w_lo_d, w_lo_b = dense.window_start(level), banded.window_start(level)
        block = rng.uniform(-1, 1, size=(t_hi - t_lo, t_hi - w_lo_b))
        dense.write_level(level, w_lo_d, block[:, w_lo_b - w_lo_d :] if w_lo_d < w_lo_b else block)
        banded.write_level(level, w_lo_b, block)
        rows = np.arange(n)
        np.testing.assert_array_equal(
            dense.pair_matrix(rows), banded.pair_matrix(rows)
        )

    def test_identity_initialisation(self, diamond):
        schedule = schedule_for(diamond.index(), "up")
        for store in (
            DenseCorrelationStore(schedule),
            BandedCorrelationStore(schedule, 1),
            LowRankCorrelationStore(schedule, 1, 2),
        ):
            pair = store.pair_matrix(np.arange(schedule.num_tasks))
            np.testing.assert_array_equal(pair, np.eye(schedule.num_tasks))

    def test_banded_out_of_band_reads_zero(self, chain3):
        schedule = schedule_for(chain3.index(), "up")
        store = BandedCorrelationStore(schedule, 0)
        pair = store.pair_matrix(np.arange(3))
        np.testing.assert_array_equal(pair, np.eye(3))

    def test_landmarks_are_nested(self):
        small = _nested_landmarks(1000, 8)
        large = _nested_landmarks(1000, 32)
        np.testing.assert_array_equal(large[:8], small)
        assert len(set(large.tolist())) == 32

    def test_exact_bandwidth_metadata(self, cholesky4, chain3, diamond):
        for graph, expected in ((chain3, 1), (diamond, 1)):
            index = graph.index()
            schedule = schedule_for(index, "up")
            assert schedule.max_edge_level_span == expected
            assert exact_bandwidth(schedule, schedule.rank[index.sink_indices()]) == expected
        index = cholesky4.index()
        schedule = schedule_for(index, "up")
        assert schedule.max_edge_level_span >= 1
        assert exact_bandwidth(schedule, schedule.rank[index.sink_indices()]) >= (
            schedule.max_edge_level_span
        )

    def test_store_memory_scales_with_band(self, estimates):
        graph, _, _ = estimates["cholesky"]
        schedule = schedule_for(graph.index(), "up")
        narrow = projected_store_bytes(schedule, "banded", 0)
        wide = projected_store_bytes(schedule, "banded", schedule.num_levels)
        dense = projected_store_bytes(schedule, "dense", 0)
        assert narrow < wide
        assert wide < dense  # half-band symmetric storage beats two matrices


class TestMemoryGuard:
    def test_dense_failure_names_backend_and_feasible_bandwidth(self, cholesky4):
        model = ExponentialErrorModel.for_graph(cholesky4, 1e-2)
        estimator = CorrelatedNormalEstimator(
            correlation_backend="dense", max_matrix_bytes=4096
        )
        with pytest.raises(ReproError) as excinfo:
            estimator.estimate(cholesky4, model)
        message = str(excinfo.value)
        assert "dense" in message
        assert str(cholesky4.num_tasks) in message
        assert "bytes" in message
        assert "banded" in message and "bandwidth<=" in message

    def test_banded_failure_names_bandwidth_that_fits(self, cholesky4):
        model = ExponentialErrorModel.for_graph(cholesky4, 1e-2)
        schedule = schedule_for(cholesky4.index(), "up")
        wide = schedule.num_levels
        cap = projected_store_bytes(schedule, "banded", 1)
        estimator = CorrelatedNormalEstimator(
            correlation_backend="banded", bandwidth=wide, max_matrix_bytes=cap
        )
        with pytest.raises(ReproError) as excinfo:
            estimator.estimate(cholesky4, model)
        message = str(excinfo.value)
        assert "banded" in message and "bandwidth<=" in message

    def test_guard_hopeless_case_suggests_sculli(self, cholesky4):
        model = ExponentialErrorModel.for_graph(cholesky4, 1e-2)
        estimator = CorrelatedNormalEstimator(
            correlation_backend="banded", max_matrix_bytes=8
        )
        with pytest.raises(ReproError) as excinfo:
            estimator.estimate(cholesky4, model)
        assert "Sculli" in str(excinfo.value)

    def test_feasible_bandwidth_search(self, cholesky4):
        schedule = schedule_for(cholesky4.index(), "up")
        huge = largest_feasible_bandwidth(schedule, "banded", 1 << 40)
        assert huge == schedule.num_levels - 1
        assert largest_feasible_bandwidth(schedule, "banded", 8) is None

    def test_banded_admits_what_dense_refuses(self, estimates):
        graph, model, dense = estimates["cholesky"]
        schedule = schedule_for(graph.index(), "up")
        sink_rows = schedule.rank[graph.index().sink_indices()]
        banded_bytes = projected_store_bytes(
            schedule, "banded", exact_bandwidth(schedule, sink_rows)
        )
        dense_bytes = projected_store_bytes(schedule, "dense", 0)
        assert banded_bytes < dense_bytes
        cap = (banded_bytes + dense_bytes) // 2
        with pytest.raises(ReproError):
            CorrelatedNormalEstimator(
                correlation_backend="dense", max_matrix_bytes=cap
            ).estimate(graph, model)
        result = CorrelatedNormalEstimator(
            correlation_backend="banded", max_matrix_bytes=cap
        ).estimate(graph, model)
        assert result.expected_makespan == dense.expected_makespan


class TestKnobs:
    def test_invalid_backend_rejected(self):
        with pytest.raises(EstimationError):
            CorrelatedNormalEstimator(correlation_backend="sparse")

    def test_invalid_bandwidth_and_rank_rejected(self):
        with pytest.raises(EstimationError):
            CorrelatedNormalEstimator(correlation_backend="banded", bandwidth=-1)
        with pytest.raises(EstimationError):
            CorrelatedNormalEstimator(correlation_backend="lowrank", rank=0)

    def test_knobs_the_backend_would_ignore_are_rejected(self):
        # An explicit bandwidth/rank must not be silently ignored by a
        # backend that does not consume it.
        with pytest.raises(EstimationError, match="banded"):
            CorrelatedNormalEstimator(bandwidth=2)
        with pytest.raises(EstimationError, match="lowrank"):
            CorrelatedNormalEstimator(correlation_backend="banded", rank=8)

    def test_env_knobs_stay_lenient_for_other_backends(self, monkeypatch):
        # A globally exported REPRO_CORR_BANDWIDTH/RANK must not poison
        # dense runs — only explicit constructor arguments conflict.
        monkeypatch.setenv("REPRO_CORR_BANDWIDTH", "2")
        monkeypatch.setenv("REPRO_CORR_RANK", "8")
        estimator = CorrelatedNormalEstimator(correlation_backend="dense")
        assert estimator.correlation_backend == "dense"

    def test_env_overrides_fill_unset_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_CORR_BACKEND", "banded")
        monkeypatch.setenv("REPRO_CORR_BANDWIDTH", "2")
        estimator = CorrelatedNormalEstimator()
        assert estimator.correlation_backend == "banded"
        assert estimator.bandwidth == 2
        monkeypatch.setenv("REPRO_CORR_BANDWIDTH", "auto")
        assert CorrelatedNormalEstimator().bandwidth is None

    def test_explicit_argument_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_CORR_BACKEND", "banded")
        estimator = CorrelatedNormalEstimator(correlation_backend="dense")
        assert estimator.correlation_backend == "dense"

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_CORR_BACKEND", "gpu")
        with pytest.raises(EstimationError):
            CorrelatedNormalEstimator()
        monkeypatch.delenv("REPRO_CORR_BACKEND")
        monkeypatch.setenv("REPRO_CORR_BANDWIDTH", "wide")
        with pytest.raises(EstimationError):
            CorrelatedNormalEstimator()

    def test_details_expose_backend_and_band(self, estimates):
        graph, model, dense = estimates["mapreduce"]
        assert dense.details["correlation_backend"] == "dense"
        banded = _run(graph, model, correlation_backend="banded")
        assert banded.details["correlation_backend"] == "banded"
        assert banded.details["correlation_bandwidth"] == banded.details["exact_bandwidth"]
        assert banded.details["correlation_store_bytes"] < dense.details["correlation_store_bytes"]
        lowrank = _run(graph, model, correlation_backend="lowrank", rank=4)
        assert lowrank.details["correlation_rank"] == 4

    def test_config_and_cli_threading(self, monkeypatch):
        from repro.experiments.config import (
            FigureConfig,
            correlation_backend,
            correlation_bandwidth,
            correlation_rank,
            estimator_options_for,
        )
        from repro.exceptions import ExperimentError

        monkeypatch.delenv("REPRO_CORR_BACKEND", raising=False)
        assert correlation_backend() is None
        assert correlation_backend("banded") == "banded"
        monkeypatch.setenv("REPRO_CORR_BACKEND", "lowrank")
        assert correlation_backend("banded") == "lowrank"  # environment wins
        monkeypatch.setenv("REPRO_CORR_BACKEND", "gpu")
        with pytest.raises(ExperimentError):
            correlation_backend()
        monkeypatch.delenv("REPRO_CORR_BACKEND")

        monkeypatch.setenv("REPRO_CORR_BANDWIDTH", "auto")
        assert correlation_bandwidth(3) is None  # environment wins
        monkeypatch.delenv("REPRO_CORR_BANDWIDTH")
        assert correlation_bandwidth(3) == 3
        assert correlation_rank(16) == 16

        config = FigureConfig(
            figure="t", workflow="lu", pfail=1e-3,
            corr_backend="banded", corr_bandwidth=2,
        )
        options = estimator_options_for(config, "normal-correlated")
        assert options == {"correlation_backend": "banded", "bandwidth": 2}
        assert estimator_options_for(config, "dodin") == {}
        with pytest.raises(ExperimentError):
            FigureConfig(figure="t", workflow="lu", pfail=1e-3, corr_backend="gpu")

    def test_cli_estimate_passes_corr_flags(self, capsys):
        from repro.cli import main

        code = main([
            "estimate", "--workflow", "mapreduce", "--size", "6",
            "--method", "normal-correlated",
            "--corr-backend", "banded", "--corr-bandwidth", "1",
        ])
        assert code == 0
        assert "normal-correlated" in capsys.readouterr().out
