"""Unit tests for repro.core.task."""

import math

import pytest

from repro.core.task import Task, validate_weight
from repro.exceptions import InvalidWeightError


class TestValidateWeight:
    def test_accepts_positive_float(self):
        assert validate_weight(1.5) == 1.5

    def test_accepts_integer(self):
        assert validate_weight(3) == 3.0
        assert isinstance(validate_weight(3), float)

    def test_accepts_zero_by_default(self):
        assert validate_weight(0.0) == 0.0

    def test_rejects_zero_when_disallowed(self):
        with pytest.raises(InvalidWeightError):
            validate_weight(0.0, allow_zero=False)

    def test_rejects_negative(self):
        with pytest.raises(InvalidWeightError):
            validate_weight(-0.1)

    def test_rejects_nan(self):
        with pytest.raises(InvalidWeightError):
            validate_weight(float("nan"))

    def test_rejects_infinity(self):
        with pytest.raises(InvalidWeightError):
            validate_weight(math.inf)

    def test_rejects_non_numeric(self):
        with pytest.raises(InvalidWeightError):
            validate_weight("not a number")


class TestTask:
    def test_basic_construction(self):
        task = Task("T1", 0.15, kernel="GEMM", metadata={"i": 1})
        assert task.task_id == "T1"
        assert task.weight == 0.15
        assert task.kernel == "GEMM"
        assert task.metadata["i"] == 1

    def test_weight_is_validated(self):
        with pytest.raises(InvalidWeightError):
            Task("T1", -1.0)

    def test_metadata_is_copied(self):
        source = {"x": 1}
        task = Task("T1", 1.0, metadata=source)
        source["x"] = 2
        assert task.metadata["x"] == 1

    def test_with_weight(self):
        task = Task("T1", 1.0, kernel="GEMM")
        heavier = task.with_weight(5.0)
        assert heavier.weight == 5.0
        assert heavier.task_id == "T1"
        assert heavier.kernel == "GEMM"
        assert task.weight == 1.0  # original unchanged

    def test_scaled(self):
        assert Task("T", 2.0).scaled(1.5).weight == 3.0

    def test_doubled_models_one_reexecution(self):
        assert Task("T", 0.15).doubled().weight == pytest.approx(0.30)

    def test_to_from_dict_roundtrip(self):
        task = Task("T1", 0.5, kernel="SYRK", metadata={"i": 2, "j": 0})
        rebuilt = Task.from_dict(task.to_dict())
        assert rebuilt == task

    def test_to_dict_omits_empty_fields(self):
        payload = Task("T1", 0.5).to_dict()
        assert "kernel" not in payload
        assert "metadata" not in payload

    def test_tasks_are_hashable_value_objects(self):
        assert Task("T", 1.0) == Task("T", 1.0)
        assert Task("T", 1.0) != Task("T", 2.0)
