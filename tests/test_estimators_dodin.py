"""Unit tests for the Dodin series-parallel estimator."""

import pytest

from repro.core.generators import chain_graph, fork_join, independent_tasks
from repro.core.paths import critical_path_length
from repro.estimators.dodin import DodinEstimator
from repro.estimators.exact import ExactEstimator
from repro.exceptions import EstimationError
from repro.failures.models import ExponentialErrorModel, FixedProbabilityModel


class TestExactOnSeriesParallelGraphs:
    """On series-parallel graphs no duplication is needed, so Dodin's
    evaluation is exact (up to support pruning, disabled here by using a
    large ``max_support``)."""

    def test_chain(self):
        g = chain_graph(5, weight=[1.0, 2.0, 1.5, 0.5, 3.0])
        model = ExponentialErrorModel(0.1)
        exact = ExactEstimator().estimate(g, model).expected_makespan
        dodin = DodinEstimator(max_support=4096).estimate(g, model)
        assert dodin.expected_makespan == pytest.approx(exact, rel=1e-9)
        assert dodin.details["duplications"] == 0

    def test_fork_join(self):
        g = fork_join(4, weight=1.0)
        model = FixedProbabilityModel(0.2)
        exact = ExactEstimator().estimate(g, model).expected_makespan
        dodin = DodinEstimator(max_support=4096).estimate(g, model)
        assert dodin.expected_makespan == pytest.approx(exact, rel=1e-9)
        assert dodin.details["duplications"] == 0

    def test_independent_tasks(self):
        g = independent_tasks(4, weight=[1.0, 2.0, 3.0, 4.0])
        model = FixedProbabilityModel(0.3)
        exact = ExactEstimator().estimate(g, model).expected_makespan
        dodin = DodinEstimator(max_support=4096).estimate(g, model)
        assert dodin.expected_makespan == pytest.approx(exact, rel=1e-9)

    def test_diamond(self, diamond):
        model = ExponentialErrorModel(0.05)
        exact = ExactEstimator().estimate(diamond, model).expected_makespan
        dodin = DodinEstimator(max_support=4096).estimate(diamond, model)
        assert dodin.expected_makespan == pytest.approx(exact, rel=1e-9)


class TestGeneralGraphs:
    def test_requires_duplications_on_non_sp_graph(self, non_sp_graph):
        model = ExponentialErrorModel(0.05)
        result = DodinEstimator().estimate(non_sp_graph, model)
        assert result.details["duplications"] >= 1
        assert result.expected_makespan >= critical_path_length(non_sp_graph)

    def test_duplication_cap(self, cholesky4):
        model = ExponentialErrorModel.for_graph(cholesky4, 0.01)
        with pytest.raises(EstimationError):
            DodinEstimator(max_duplications=0).estimate(cholesky4, model)

    def test_runs_on_factorization_dags(self, cholesky4, lu4, qr4):
        for graph in (cholesky4, lu4, qr4):
            model = ExponentialErrorModel.for_graph(graph, 0.001)
            result = DodinEstimator().estimate(graph, model)
            assert result.expected_makespan >= critical_path_length(graph) - 1e-9
            assert result.details["final_support"] <= 64
            assert result.details["series_reductions"] > 0

    def test_zero_rate_recovers_something_close_to_critical_path(self, cholesky4):
        # With λ = 0 every task law is deterministic; Dodin's value is the
        # critical path (duplication does not change deterministic maxima).
        result = DodinEstimator().estimate(cholesky4, ExponentialErrorModel(0.0))
        assert result.expected_makespan == pytest.approx(
            critical_path_length(cholesky4), rel=1e-9
        )

    def test_error_larger_than_first_order_on_non_sp_dag(self, cholesky4):
        """Section V-F: Dodin's approximation is poor on DAGs that are far
        from series-parallel."""
        from repro.estimators.first_order import FirstOrderEstimator

        model = ExponentialErrorModel.for_graph(cholesky4, 0.001)
        exact_like = ExactEstimator(max_tasks=22)
        # cholesky4 has 20 tasks: exact enumeration is feasible.
        reference = exact_like.estimate(cholesky4, model).expected_makespan
        dodin_err = abs(
            DodinEstimator().estimate(cholesky4, model).expected_makespan - reference
        )
        first_err = abs(
            FirstOrderEstimator().estimate(cholesky4, model).expected_makespan - reference
        )
        assert dodin_err > first_err

    def test_support_pruning_tradeoff(self, lu4):
        model = ExponentialErrorModel.for_graph(lu4, 0.01)
        coarse = DodinEstimator(max_support=8).estimate(lu4, model).expected_makespan
        fine = DodinEstimator(max_support=512).estimate(lu4, model).expected_makespan
        # Both must stay in a sane range around the failure-free makespan.
        d = critical_path_length(lu4)
        assert 0.9 * d < coarse < 1.5 * d
        assert 0.9 * d < fine < 1.5 * d

    def test_parameter_validation(self):
        with pytest.raises(EstimationError):
            DodinEstimator(max_support=1)
        with pytest.raises(EstimationError):
            DodinEstimator(reexecution_factor=0.9)

    def test_deterministic_output(self, qr4):
        model = ExponentialErrorModel.for_graph(qr4, 0.001)
        a = DodinEstimator().estimate(qr4, model).expected_makespan
        b = DodinEstimator().estimate(qr4, model).expected_makespan
        assert a == b


class TestJoinRounds:
    """Independent (non-adjacent) joins are duplicated in rounds."""

    @staticmethod
    def _twin_gadget():
        from repro.core.graph import TaskGraph

        g = TaskGraph(name="twin-gadget")
        for i in ("1", "2"):
            for t in ("s", "a", "b", "c", "d", "t"):
                g.add_task(t + i, 1.0)
            g.add_edge("s" + i, "a" + i)
            g.add_edge("s" + i, "b" + i)
            g.add_edge("a" + i, "c" + i)
            g.add_edge("a" + i, "d" + i)
            g.add_edge("b" + i, "c" + i)
            g.add_edge("b" + i, "d" + i)
            g.add_edge("c" + i, "t" + i)
            g.add_edge("d" + i, "t" + i)
        return g

    def test_parallel_gadgets_share_rounds(self):
        """Two disjoint non-series-parallel gadgets have their joins at
        equal levels: the round schedule resolves them together instead of
        one at a time."""
        g = self._twin_gadget()
        model = FixedProbabilityModel(0.05)
        result = DodinEstimator(max_support=512).estimate(g, model)
        assert result.details["duplications"] > result.details["join_rounds"] >= 1

    def test_round_schedule_matches_scalar_reference(self):
        from repro.estimators.dodin import sequential_dodin_estimate

        g = self._twin_gadget()
        model = FixedProbabilityModel(0.05)
        batched = DodinEstimator(max_support=512).estimate(g, model)
        reference = sequential_dodin_estimate(g, model, max_support=512)
        assert batched.expected_makespan == pytest.approx(reference, rel=1e-9)

    def test_cascade_size_stays_small_on_paper_dags(self, cholesky4, lu4):
        """Same-level rounds must not inflate the duplication cascade (the
        historical one-at-a-time rule resolves the same joins, one round
        each)."""
        for graph in (cholesky4, lu4):
            model = ExponentialErrorModel.for_graph(graph, 0.001)
            details = DodinEstimator().estimate(graph, model).details
            assert details["duplications"] <= 5 * graph.num_tasks
            assert details["join_rounds"] <= details["duplications"]
