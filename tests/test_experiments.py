"""Unit tests for repro.experiments (configs, drivers, reporting, runner)."""

import os

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.config import (
    PAPER_FIGURES,
    PAPER_MC_TRIALS,
    TABLE1,
    FigureConfig,
    ScalabilityConfig,
    monte_carlo_trials,
)
from repro.experiments.error_vs_size import run_error_vs_size, run_figure
from repro.experiments.reporting import (
    ascii_semilog_plot,
    figure_ascii_plot,
    figure_table,
    format_table,
    scalability_table,
    write_csv,
)
from repro.experiments.runner import run_all_figures, run_everything, summarize_figure
from repro.experiments.scalability import run_scalability


class TestConfig:
    def test_paper_figures_cover_all_nine(self):
        assert len(PAPER_FIGURES) == 9
        workflows = {c.workflow for c in PAPER_FIGURES.values()}
        assert workflows == {"cholesky", "lu", "qr"}
        pfails = {c.pfail for c in PAPER_FIGURES.values()}
        assert pfails == {1e-2, 1e-3, 1e-4}
        for config in PAPER_FIGURES.values():
            assert config.sizes == (4, 6, 8, 10, 12)
            assert config.estimators == ("dodin", "normal", "first-order")

    def test_table1_defaults_match_paper(self):
        assert TABLE1.workflow == "lu"
        assert TABLE1.size == 20
        assert TABLE1.pfail == pytest.approx(1e-4)
        assert PAPER_MC_TRIALS == 300_000

    def test_mc_trials_environment_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_MC_TRIALS", "1234")
        assert monte_carlo_trials() == 1234
        assert FigureConfig("f", "lu", 0.01).trials == 1234
        monkeypatch.setenv("REPRO_MC_TRIALS", "not-an-int")
        with pytest.raises(ExperimentError):
            monte_carlo_trials()
        monkeypatch.delenv("REPRO_MC_TRIALS")
        assert monte_carlo_trials(777) == 777

    def test_validation(self):
        with pytest.raises(ExperimentError):
            FigureConfig("f", "lu", 0.0)
        with pytest.raises(ExperimentError):
            FigureConfig("f", "lu", 0.1, sizes=())
        with pytest.raises(ExperimentError):
            ScalabilityConfig(pfail=2.0)
        assert "cholesky" in PAPER_FIGURES["figure4"].describe()


class TestDrivers:
    @pytest.fixture(scope="class")
    def small_result(self):
        """A fast, fully wired experiment run (tiny sizes and trial count)."""
        config = FigureConfig(
            figure="figure-test",
            workflow="cholesky",
            pfail=1e-2,
            sizes=(2, 3),
            estimators=("normal", "first-order"),
        )
        messages = []
        result = run_error_vs_size(
            config, mc_trials=4_000, seed=1, progress=messages.append
        )
        return config, result, messages

    def test_points_cover_the_grid(self, small_result):
        config, result, _ = small_result
        assert len(result.points) == len(config.sizes) * len(config.estimators)
        assert {p.size for p in result.points} == set(config.sizes)
        assert set(result.estimators()) == set(config.estimators)

    def test_series_sorted_and_consistent(self, small_result):
        _, result, _ = small_result
        series = result.series("first-order")
        assert [p.size for p in series] == [2, 3]
        for p in series:
            assert p.normalized_difference == pytest.approx(
                (p.estimate - p.reference) / p.reference
            )
            assert p.relative_error >= 0

    def test_first_order_beats_normal_at_low_pfail(self):
        config = FigureConfig(
            figure="figure-test2",
            workflow="lu",
            pfail=1e-3,
            sizes=(6,),
            estimators=("normal", "first-order"),
        )
        result = run_error_vs_size(config, mc_trials=30_000, seed=3)
        winners = result.winner_per_size()
        assert winners[6] == "first-order"

    def test_progress_callback_invoked(self, small_result):
        _, _, messages = small_result
        assert any("MC mean" in m for m in messages)

    def test_run_figure_rejects_unknown(self):
        with pytest.raises(ExperimentError):
            run_figure("figure99")

    def test_scalability_driver(self):
        config = ScalabilityConfig(workflow="lu", size=6, pfail=1e-3)
        result = run_scalability(config, mc_trials=5_000, seed=4)
        assert result.num_tasks == 91
        assert {r.estimator for r in result.rows} == set(config.estimators)
        row = result.row("first-order")
        assert row.wall_time >= 0
        with pytest.raises(ExperimentError):
            result.row("unknown")


class TestReporting:
    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2], [30, 40]], title="T")
        assert "T" in text and "30" in text
        lines = text.splitlines()
        assert len(lines) == 5  # title, header, separator, two rows

    def test_figure_table_and_plot(self):
        config = FigureConfig(
            figure="figure-mini",
            workflow="cholesky",
            pfail=1e-2,
            sizes=(2, 3),
            estimators=("first-order",),
        )
        result = run_error_vs_size(config, mc_trials=2_000, seed=0)
        table = figure_table(result)
        assert "figure-mini" in table and "first-order diff" in table
        plot = figure_ascii_plot(result)
        assert "legend" in plot

    def test_scalability_table(self):
        config = ScalabilityConfig(workflow="cholesky", size=4, pfail=1e-2)
        result = run_scalability(config, mc_trials=2_000, seed=0)
        text = scalability_table(result)
        assert "Table I" in text
        assert "first-order" in text

    def test_ascii_plot_input_validation(self):
        with pytest.raises(ExperimentError):
            ascii_semilog_plot({})
        with pytest.raises(ExperimentError):
            ascii_semilog_plot({"x": [(1, 0.0)]})

    def test_write_csv(self, tmp_path):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}]
        path = write_csv(rows, tmp_path / "out" / "rows.csv")
        text = path.read_text()
        assert text.splitlines()[0] == "a,b"
        assert "3,4.5" in text
        with pytest.raises(ExperimentError):
            write_csv([], tmp_path / "empty.csv")


class TestRunner:
    def test_run_all_figures_subset_with_csv(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MC_TRIALS", "1500")
        # Shrink the figure to keep the test fast: patch the config registry.
        from repro.experiments import config as config_module

        small = FigureConfig(
            figure="figure4",
            workflow="cholesky",
            pfail=1e-2,
            sizes=(2, 3),
            estimators=("first-order", "normal"),
        )
        monkeypatch.setitem(config_module.PAPER_FIGURES, "figure4", small)
        monkeypatch.setitem(
            run_all_figures.__globals__["PAPER_FIGURES"], "figure4", small
        )
        results = run_all_figures(["figure4"], output_dir=tmp_path)
        assert "figure4" in results
        assert (tmp_path / "figure4.csv").exists()
        summary = summarize_figure(results["figure4"])
        assert "figure4" in summary

    def test_run_all_figures_unknown_name(self):
        with pytest.raises(ExperimentError):
            run_all_figures(["figure99"])
