"""Unit tests for the Sculli (Normal) and correlated-normal estimators."""

import pytest

from repro.core.generators import chain_graph, fork_join, independent_tasks
from repro.core.graph import TaskGraph
from repro.core.paths import critical_path_length
from repro.estimators.correlated import CorrelatedNormalEstimator
from repro.estimators.exact import ExactEstimator
from repro.estimators.montecarlo import MonteCarloEstimator
from repro.estimators.sculli import SculliEstimator
from repro.exceptions import EstimationError
from repro.failures.models import ExponentialErrorModel, FixedProbabilityModel
from repro.failures.twostate import TwoStateDistribution


class TestSculli:
    def test_chain_is_exact_for_means(self):
        """On a chain there is no maximum: the normal propagation reproduces
        the exact expectation (sum of per-task means)."""
        weights = [1.0, 0.5, 2.0]
        g = chain_graph(3, weight=weights)
        model = ExponentialErrorModel(0.2)
        expected = sum(
            TwoStateDistribution.from_model(w, model).mean for w in weights
        )
        result = SculliEstimator().estimate(g, model)
        assert result.expected_makespan == pytest.approx(expected)
        variance = sum(TwoStateDistribution.from_model(w, model).variance for w in weights)
        assert result.details["makespan_variance"] == pytest.approx(variance)

    def test_zero_rate_gives_failure_free_makespan(self, cholesky4):
        result = SculliEstimator().estimate(cholesky4, ExponentialErrorModel(0.0))
        assert result.expected_makespan == pytest.approx(critical_path_length(cholesky4))
        assert result.details["makespan_variance"] == pytest.approx(0.0)

    def test_estimate_at_least_failure_free(self, lu4, qr4):
        for graph in (lu4, qr4):
            model = ExponentialErrorModel.for_graph(graph, 0.01)
            result = SculliEstimator().estimate(graph, model)
            assert result.expected_makespan >= critical_path_length(graph) - 1e-9

    def test_multiple_sinks_folded(self):
        g = independent_tasks(3, weight=[1.0, 1.0, 1.0])
        model = FixedProbabilityModel(0.5)
        result = SculliEstimator().estimate(g, model)
        # True E[max of three iid {1,2} w.p. .5] = 2 - 0.125 = 1.875; the
        # normal approximation should land in the right neighbourhood.
        assert 1.5 < result.expected_makespan < 2.1

    def test_reasonable_accuracy_on_small_graph(self, small_random_dag):
        model = ExponentialErrorModel.for_graph(small_random_dag, 0.01)
        exact = ExactEstimator().estimate(small_random_dag, model).expected_makespan
        sculli = SculliEstimator().estimate(small_random_dag, model).expected_makespan
        assert sculli == pytest.approx(exact, rel=0.05)

    def test_completion_time_moments(self, diamond):
        model = ExponentialErrorModel(0.05)
        moments = SculliEstimator().completion_time_moments(diamond, model)
        assert set(moments) == set(diamond.task_ids())
        mean_t, var_t = moments["t"]
        result = SculliEstimator().estimate(diamond, model)
        assert mean_t == pytest.approx(result.expected_makespan)
        assert var_t == pytest.approx(result.details["makespan_variance"])

    def test_invalid_reexecution_factor(self):
        with pytest.raises(EstimationError):
            SculliEstimator(reexecution_factor=0.5)


class TestCorrelatedNormal:
    def test_chain_matches_sculli(self):
        g = chain_graph(4, weight=[1.0, 2.0, 3.0, 4.0])
        model = ExponentialErrorModel(0.1)
        sculli = SculliEstimator().estimate(g, model).expected_makespan
        correlated = CorrelatedNormalEstimator().estimate(g, model).expected_makespan
        assert correlated == pytest.approx(sculli)

    def test_perfectly_correlated_branches(self):
        """Two parallel branches that share a long common prefix: ignoring
        the correlation overestimates the makespan; tracking it should land
        closer to the exact value."""
        g = TaskGraph(name="shared-prefix")
        g.add_task("head", 10.0)
        g.add_task("left", 0.1)
        g.add_task("right", 0.1)
        g.add_edge("head", "left")
        g.add_edge("head", "right")
        model = FixedProbabilityModel(0.3)
        exact = ExactEstimator().estimate(g, model).expected_makespan
        sculli = SculliEstimator().estimate(g, model).expected_makespan
        correlated = CorrelatedNormalEstimator().estimate(g, model).expected_makespan
        assert abs(correlated - exact) <= abs(sculli - exact) + 1e-12

    def test_not_worse_than_sculli_on_factorization_dag(self, cholesky4):
        model = ExponentialErrorModel.for_graph(cholesky4, 0.01)
        mc = MonteCarloEstimator(trials=120_000, seed=5).estimate(cholesky4, model)
        reference = mc.expected_makespan
        sculli = SculliEstimator().estimate(cholesky4, model).expected_makespan
        correlated = CorrelatedNormalEstimator().estimate(cholesky4, model).expected_makespan
        assert abs(correlated - reference) <= abs(sculli - reference) * 1.5

    def test_zero_rate(self, qr4):
        result = CorrelatedNormalEstimator().estimate(qr4, ExponentialErrorModel(0.0))
        assert result.expected_makespan == pytest.approx(critical_path_length(qr4))

    def test_invalid_reexecution_factor(self):
        with pytest.raises(EstimationError):
            CorrelatedNormalEstimator(reexecution_factor=0.0)
