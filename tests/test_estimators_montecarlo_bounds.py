"""Unit tests for the Monte Carlo estimator, the bounds and the registry."""

import numpy as np
import pytest

from repro.core.generators import chain_graph
from repro.core.graph import TaskGraph
from repro.core.paths import critical_path_length
from repro.estimators.base import EstimateResult, normalized_difference, relative_error
from repro.estimators.bounds import LowerBoundEstimator, UpperBoundEstimator, makespan_bounds
from repro.estimators.exact import ExactEstimator
from repro.estimators.first_order import FirstOrderEstimator
from repro.estimators.montecarlo import MonteCarloEstimator
from repro.estimators.registry import (
    PAPER_ESTIMATORS,
    available_estimators,
    get_estimator,
    register_estimator,
)
from repro.exceptions import EstimationError
from repro.failures.models import ExponentialErrorModel, FixedProbabilityModel


class TestMonteCarlo:
    def test_reproducible_with_seed(self, cholesky4):
        model = ExponentialErrorModel.for_graph(cholesky4, 0.01)
        a = MonteCarloEstimator(trials=5_000, seed=42).estimate(cholesky4, model)
        b = MonteCarloEstimator(trials=5_000, seed=42).estimate(cholesky4, model)
        assert a.expected_makespan == b.expected_makespan

    def test_different_seeds_differ(self, cholesky4):
        model = ExponentialErrorModel.for_graph(cholesky4, 0.01)
        a = MonteCarloEstimator(trials=5_000, seed=1).estimate(cholesky4, model)
        b = MonteCarloEstimator(trials=5_000, seed=2).estimate(cholesky4, model)
        assert a.expected_makespan != b.expected_makespan

    def test_zero_rate_gives_exact_critical_path(self, lu4):
        result = MonteCarloEstimator(trials=500, seed=0).estimate(
            lu4, ExponentialErrorModel(0.0)
        )
        assert result.expected_makespan == pytest.approx(critical_path_length(lu4))
        assert result.details["makespan_std"] == pytest.approx(0.0)

    def test_confidence_interval_and_stderr(self, cholesky4):
        model = ExponentialErrorModel.for_graph(cholesky4, 0.01)
        result = MonteCarloEstimator(trials=20_000, seed=3).estimate(cholesky4, model)
        low, high = result.confidence_interval
        assert low < result.expected_makespan < high
        assert result.std_error == pytest.approx((high - low) / (2 * 1.959964), rel=1e-3)
        assert result.details["trials"] == 20_000

    def test_agrees_with_exact_within_noise(self, small_random_dag):
        model = ExponentialErrorModel.for_graph(small_random_dag, 0.02)
        exact = ExactEstimator().estimate(small_random_dag, model).expected_makespan
        mc = MonteCarloEstimator(trials=200_000, seed=11).estimate(small_random_dag, model)
        assert abs(mc.expected_makespan - exact) < 5 * mc.std_error

    def test_geometric_mode_exceeds_two_state(self, cholesky4):
        """Unbounded re-execution can only lengthen executions, so the
        geometric-mode mean must dominate the two-state mean (at equal seeds
        the difference is tiny for small rates, so use a high rate)."""
        model = ExponentialErrorModel.for_graph(cholesky4, 0.3)
        two_state = MonteCarloEstimator(trials=40_000, seed=7, mode="two-state").estimate(
            cholesky4, model
        )
        geometric = MonteCarloEstimator(trials=40_000, seed=7, mode="geometric").estimate(
            cholesky4, model
        )
        assert geometric.expected_makespan > two_state.expected_makespan

    def test_keep_samples_quantiles(self, diamond):
        model = FixedProbabilityModel(0.3)
        result = MonteCarloEstimator(trials=5_000, seed=1, keep_samples=True).estimate(
            diamond, model
        )
        assert "median" in result.details and "p99" in result.details
        assert result.details["median"] <= result.details["p99"]

    def test_early_stopping(self, cholesky4):
        model = ExponentialErrorModel.for_graph(cholesky4, 0.01)
        result = MonteCarloEstimator(
            trials=1_000_000,
            seed=0,
            batch_size=4_000,
            target_relative_half_width=1e-3,
        ).estimate(cholesky4, model)
        assert result.details["trials"] < 1_000_000

    def test_invalid_parameters(self, diamond):
        with pytest.raises(EstimationError):
            MonteCarloEstimator(trials=0).estimate(diamond, ExponentialErrorModel(0.1))


class TestBounds:
    @pytest.mark.parametrize("pfail", [0.001, 0.01, 0.1])
    def test_bounds_bracket_exact_value(self, small_random_dag, pfail):
        model = ExponentialErrorModel.for_graph(small_random_dag, pfail)
        exact = ExactEstimator().estimate(small_random_dag, model).expected_makespan
        low, high = makespan_bounds(small_random_dag, model)
        assert low - 1e-12 <= exact <= high + 1e-12

    def test_bounds_bracket_first_order_at_low_rates(self, cholesky4):
        model = ExponentialErrorModel.for_graph(cholesky4, 1e-4)
        low, high = makespan_bounds(cholesky4, model)
        first = FirstOrderEstimator().estimate(cholesky4, model).expected_makespan
        assert low <= first <= high

    def test_lower_bound_at_least_failure_free(self, qr4):
        model = ExponentialErrorModel.for_graph(qr4, 0.05)
        result = LowerBoundEstimator().estimate(qr4, model)
        assert result.expected_makespan >= critical_path_length(qr4)

    def test_upper_bound_at_most_worst_case(self, lu4):
        model = ExponentialErrorModel.for_graph(lu4, 0.05)
        result = UpperBoundEstimator().estimate(lu4, model)
        assert result.expected_makespan <= 2 * critical_path_length(lu4) + 1e-12


class TestBaseAndRegistry:
    def test_normalized_difference_and_relative_error(self):
        assert normalized_difference(1.1, 1.0) == pytest.approx(0.1)
        assert normalized_difference(0.9, 1.0) == pytest.approx(-0.1)
        assert relative_error(0.9, 1.0) == pytest.approx(0.1)
        with pytest.raises(EstimationError):
            normalized_difference(1.0, 0.0)

    def test_result_slowdown_and_summary(self):
        result = EstimateResult(
            method="x", expected_makespan=12.0, failure_free_makespan=10.0, wall_time=0.5
        )
        assert result.slowdown == pytest.approx(1.2)
        assert "x" in result.summary()
        assert result.relative_error_with(10.0) == pytest.approx(0.2)

    def test_registry_lists_paper_estimators(self):
        names = available_estimators()
        for expected in PAPER_ESTIMATORS:
            assert expected in names
        for expected in ("monte-carlo", "exact", "second-order", "normal-correlated"):
            assert expected in names

    def test_get_estimator_with_kwargs_and_aliases(self):
        mc = get_estimator("mc", trials=123, seed=9)
        assert mc.trials == 123
        assert get_estimator("sculli").name == "normal"
        assert get_estimator("FIRST_ORDER").name == "first-order"

    def test_unknown_estimator(self):
        with pytest.raises(EstimationError):
            get_estimator("does-not-exist")

    def test_register_custom_estimator(self, diamond):
        class ConstantEstimator(FirstOrderEstimator):
            name = "constant-42"

            def _estimate(self, graph, model):
                result = super()._estimate(graph, model)
                result.expected_makespan = 42.0
                return result

        register_estimator("constant-42", ConstantEstimator)
        est = get_estimator("constant-42")
        value = est.estimate(diamond, ExponentialErrorModel(0.0)).expected_makespan
        assert value == 42.0
        with pytest.raises(EstimationError):
            register_estimator("constant-42", ConstantEstimator)

    def test_estimator_is_callable(self, diamond):
        model = ExponentialErrorModel(0.01)
        estimator = FirstOrderEstimator()
        assert estimator(diamond, model).expected_makespan == estimator.estimate(
            diamond, model
        ).expected_makespan
