"""Cross-backend determinism and streaming-statistics tests.

The executor-backend contract (see :mod:`repro.sim.executors`):

* ``serial`` is bit-identical to the historical ``workers=1`` engine;
* ``threads`` and ``processes`` derive RNG streams per *batch* and fold in
  batch-index order, so a fixed seed yields identical merged estimates at
  any worker count with either parallel backend;
* streaming mode serves mean/std/CI from the same fold (exact agreement)
  and quantiles from the fixed-grid sketch (one-bin accuracy).
"""

import numpy as np
import pytest

from repro.exceptions import EstimationError, ReproError
from repro.failures.models import ExponentialErrorModel, FixedProbabilityModel
from repro.sim.engine import MonteCarloEngine
from repro.sim.executors import BACKENDS, batch_stream, resolve_backend
from repro.sim.stats import (
    P2Quantile,
    QuantileSketch,
    ReservoirSample,
    StreamingSummary,
)
from repro.rv.empirical import RunningMoments
from repro.workflows.registry import build_dag


@pytest.fixture(scope="module")
def case():
    graph = build_dag("cholesky", 5)
    model = ExponentialErrorModel.for_graph(graph, 1e-2)
    return graph, model


KW = dict(trials=6_000, batch_size=1_024, seed=123, keep_samples=True)


class TestBackendResolution:
    def test_default_resolution(self):
        assert resolve_backend(None, 1) == "serial"
        assert resolve_backend(None, 4) == "threads"

    def test_explicit_names(self):
        for name in BACKENDS:
            workers = 1 if name == "serial" else 2
            assert resolve_backend(name, workers) == name

    def test_unknown_backend_rejected(self):
        with pytest.raises(EstimationError):
            resolve_backend("gpu", 1)

    def test_serial_with_many_workers_rejected(self, case):
        graph, model = case
        with pytest.raises(EstimationError):
            MonteCarloEngine(graph, model, backend="serial", workers=4)

    def test_batch_stream_matches_seedsequence_spawn(self):
        root = np.random.SeedSequence(99)
        children = root.spawn(5)
        for b in range(5):
            a = np.random.default_rng(children[b]).random(8)
            c = batch_stream(99, b).random(8)
            assert np.array_equal(a, c)


class TestCrossBackendDeterminism:
    def test_serial_bit_identical_to_default_engine(self, case):
        graph, model = case
        default = MonteCarloEngine(graph, model, **KW).run()
        serial = MonteCarloEngine(graph, model, backend="serial", **KW).run()
        assert serial.backend == "serial"
        assert np.array_equal(
            serial.samples.samples(), default.samples.samples()
        )
        assert serial.mean == default.mean
        assert serial.std == default.std

    def test_identical_across_parallel_backends_and_worker_counts(self, case):
        graph, model = case
        results = [
            MonteCarloEngine(
                graph, model, backend=backend, workers=workers, **KW
            ).run()
            for backend, workers in [
                ("threads", 1),
                ("threads", 2),
                ("threads", 4),
                ("processes", 2),
            ]
        ]
        reference = results[0]
        assert reference.trials == KW["trials"]
        for other in results[1:]:
            assert np.array_equal(
                other.samples.samples(), reference.samples.samples()
            ), f"{other.backend}/{other.workers} diverged"
            assert other.mean == reference.mean
            assert other.std == reference.std
            assert other.minimum == reference.minimum
            assert other.maximum == reference.maximum

    def test_parallel_backends_agree_with_serial_statistically(self, case):
        graph, model = case
        serial = MonteCarloEngine(graph, model, backend="serial", **KW).run()
        threads = MonteCarloEngine(
            graph, model, backend="threads", workers=2, **KW
        ).run()
        assert abs(serial.mean - threads.mean) <= 6.0 * (
            serial.standard_error + threads.standard_error
        )

    def test_processes_reproducible_across_runs(self, case):
        graph, model = case
        kw = dict(trials=3_000, batch_size=512, seed=5, keep_samples=True)
        a = MonteCarloEngine(graph, model, backend="processes", workers=2, **kw).run()
        b = MonteCarloEngine(graph, model, backend="processes", workers=2, **kw).run()
        assert np.array_equal(a.samples.samples(), b.samples.samples())

    def test_processes_geometric_mode_matches_threads(self, case):
        graph, model = case
        kw = dict(trials=2_000, batch_size=512, seed=11, mode="geometric",
                  keep_samples=True)
        t = MonteCarloEngine(graph, model, backend="threads", workers=2, **kw).run()
        p = MonteCarloEngine(graph, model, backend="processes", workers=2, **kw).run()
        assert np.array_equal(p.samples.samples(), t.samples.samples())

    def test_early_stopping_identical_across_worker_counts(self, case):
        graph, model = case
        kw = dict(trials=100_000, batch_size=1_024, seed=9,
                  target_relative_half_width=5e-3)
        a = MonteCarloEngine(graph, model, backend="threads", workers=2, **kw).run()
        b = MonteCarloEngine(graph, model, backend="threads", workers=4, **kw).run()
        assert a.trials == b.trials < 100_000
        assert a.mean == b.mean


class TestStreamingMode:
    def test_streaming_matches_materialised_moments(self, case):
        graph, model = case
        kept = MonteCarloEngine(graph, model, **KW).run()
        streamed = MonteCarloEngine(
            graph, model, trials=KW["trials"], batch_size=KW["batch_size"],
            seed=KW["seed"], streaming=True,
        ).run()
        assert streamed.streaming and streamed.samples is None
        assert abs(streamed.mean - kept.mean) <= 1e-9 * abs(kept.mean)
        assert abs(streamed.std - kept.std) <= 1e-9 * abs(kept.std)
        for a, b in zip(streamed.confidence_interval, kept.confidence_interval):
            assert abs(a - b) <= 1e-9 * abs(b)
        assert streamed.minimum == kept.minimum
        assert streamed.maximum == kept.maximum

    def test_streaming_quantiles_close_to_exact(self, case):
        graph, model = case
        kept = MonteCarloEngine(graph, model, **KW).run()
        streamed = MonteCarloEngine(
            graph, model, trials=KW["trials"], batch_size=KW["batch_size"],
            seed=KW["seed"], streaming=True,
        ).run()
        span = kept.maximum - kept.minimum
        for q in (0.1, 0.5, 0.9, 0.99):
            exact = kept.quantile(q)
            approx = streamed.quantile(q)
            # One (padded) sketch bin of the sample span.
            assert abs(approx - exact) <= 1.5 * span / streamed.sketch.bins * (
                1 + 2 * streamed.sketch.padding
            ) + 1e-12

    def test_streaming_works_on_parallel_backends(self, case):
        graph, model = case
        s = MonteCarloEngine(
            graph, model, trials=4_000, batch_size=512, seed=3,
            backend="threads", workers=2, streaming=True, reservoir=256,
        ).run()
        assert s.samples is None and s.sketch is not None
        assert s.reservoir is not None and s.reservoir.shape == (256,)
        assert s.minimum <= s.quantile(0.5) <= s.maximum
        assert s.minimum <= s.reservoir.min() <= s.reservoir.max() <= s.maximum

    def test_streaming_memory_is_batch_bounded(self, case):
        graph, model = case
        engine = MonteCarloEngine(
            graph, model, trials=64_000, batch_size=1_024, seed=1, streaming=True
        )
        result = engine.run()
        # The sketch is the only distribution state kept: a fixed grid,
        # independent of the trial count.
        assert result.sketch.nbytes < 100_000
        assert result.sketch.count == 64_000

    def test_streaming_and_keep_samples_conflict(self, case):
        graph, model = case
        with pytest.raises(EstimationError):
            MonteCarloEngine(graph, model, streaming=True, keep_samples=True)

    def test_quantile_requires_distribution_state(self, case):
        graph, model = case
        bare = MonteCarloEngine(
            graph, model, trials=1_000, batch_size=512, seed=2
        ).run()
        with pytest.raises(EstimationError):
            bare.quantile(0.5)


class TestStreamingPrimitives:
    def test_running_moments_merge_matches_concatenation(self, rng):
        a_data = rng.normal(10.0, 2.0, size=5_000)
        b_data = rng.normal(12.0, 0.5, size=3_000)
        a = RunningMoments()
        a.update(a_data)
        b = RunningMoments()
        b.update(b_data)
        a.merge(b)
        both = np.concatenate([a_data, b_data])
        assert a.count == both.size
        assert a.mean == pytest.approx(both.mean(), rel=1e-12)
        assert a.std == pytest.approx(both.std(ddof=1), rel=1e-12)
        assert a.minimum == both.min() and a.maximum == both.max()

    def test_merge_into_empty(self):
        a = RunningMoments()
        b = RunningMoments()
        b.update(np.array([1.0, 2.0, 3.0]))
        a.merge(b)
        assert a.count == 3 and a.mean == pytest.approx(2.0)
        a.merge(RunningMoments())  # merging an empty accumulator is a no-op
        assert a.count == 3

    def test_sketch_quantiles_vs_numpy(self, rng):
        data = rng.normal(50.0, 5.0, size=40_000)
        sketch = QuantileSketch(bins=2_048)
        for chunk in np.split(data, 10):
            sketch.update(chunk)
        for q in (0.05, 0.25, 0.5, 0.75, 0.95):
            assert sketch.quantile(q) == pytest.approx(
                float(np.quantile(data, q)), abs=0.1
            )

    def test_sketch_handles_out_of_grid_mass(self, rng):
        sketch = QuantileSketch(bins=128)
        sketch.update(rng.uniform(0.0, 1.0, size=1_000))
        # Later batches escape the frozen grid on both sides.
        sketch.update(np.full(500, -10.0))
        sketch.update(np.full(500, 20.0))
        assert sketch.count == 2_000
        assert sketch.quantile(0.0) == pytest.approx(-10.0)
        assert sketch.quantile(1.0) == pytest.approx(20.0)
        assert 0.0 <= sketch.quantile(0.5) <= 1.0

    def test_sketch_validation(self):
        with pytest.raises(EstimationError):
            QuantileSketch(bins=1)
        empty = QuantileSketch()
        with pytest.raises(EstimationError):
            empty.quantile(0.5)
        sketch = QuantileSketch()
        sketch.update(np.array([1.0, 2.0]))
        with pytest.raises(EstimationError):
            sketch.quantile(1.5)

    def test_p2_quantile_vs_numpy(self, rng):
        data = rng.normal(0.0, 1.0, size=20_000)
        for q in (0.25, 0.5, 0.95):
            p2 = P2Quantile(q)
            p2.update(data)
            assert p2.value() == pytest.approx(float(np.quantile(data, q)), abs=0.05)

    def test_p2_small_samples(self):
        p2 = P2Quantile(0.5)
        p2.update(np.array([3.0, 1.0, 2.0]))
        assert p2.value() == pytest.approx(2.0)
        with pytest.raises(EstimationError):
            P2Quantile(0.0)
        with pytest.raises(EstimationError):
            P2Quantile(1.0)

    def test_reservoir_is_uniform_subsample(self):
        rng = np.random.default_rng(0)
        reservoir = ReservoirSample(500, rng=rng)
        stream = np.arange(50_000, dtype=np.float64)
        for chunk in np.split(stream, 25):
            reservoir.update(chunk)
        sample = reservoir.samples()
        assert sample.shape == (500,)
        assert reservoir.count == 50_000
        # A uniform subsample's mean is close to the stream mean.
        assert sample.mean() == pytest.approx(stream.mean(), rel=0.1)

    def test_streaming_summary_bundle(self, rng):
        summary = StreamingSummary(bins=256, reservoir=100, rng=rng)
        data = rng.normal(5.0, 1.0, size=10_000)
        for chunk in np.split(data, 5):
            summary.update(chunk)
        assert summary.moments.count == 10_000
        assert summary.quantile(0.5) == pytest.approx(
            float(np.median(data)), abs=0.1
        )
        assert summary.reservoir.samples().shape == (100,)


class TestConfigResolution:
    def test_backend_env_override(self, monkeypatch):
        from repro.experiments.config import monte_carlo_backend

        monkeypatch.delenv("REPRO_MC_BACKEND", raising=False)
        assert monte_carlo_backend() is None
        assert monte_carlo_backend("threads") == "threads"
        monkeypatch.setenv("REPRO_MC_BACKEND", "processes")
        assert monte_carlo_backend() == "processes"
        assert monte_carlo_backend("serial") == "processes"  # environment wins

    def test_backend_env_validation(self, monkeypatch):
        from repro.exceptions import ExperimentError
        from repro.experiments.config import monte_carlo_backend

        monkeypatch.setenv("REPRO_MC_BACKEND", "gpu")
        with pytest.raises(ExperimentError):
            monte_carlo_backend()

    def test_streaming_env_override(self, monkeypatch):
        from repro.exceptions import ExperimentError
        from repro.experiments.config import monte_carlo_streaming

        monkeypatch.delenv("REPRO_MC_STREAMING", raising=False)
        assert monte_carlo_streaming() is False
        assert monte_carlo_streaming(True) is True
        monkeypatch.setenv("REPRO_MC_STREAMING", "yes")
        assert monte_carlo_streaming() is True
        monkeypatch.setenv("REPRO_MC_STREAMING", "off")
        assert monte_carlo_streaming(True) is False  # environment wins
        monkeypatch.setenv("REPRO_MC_STREAMING", "maybe")
        with pytest.raises(ExperimentError):
            monte_carlo_streaming()

    def test_config_properties(self):
        from repro.experiments.config import FigureConfig, ScalabilityConfig
        from repro.exceptions import ExperimentError

        fig = FigureConfig(
            figure="t", workflow="lu", pfail=1e-3,
            mc_backend="processes", mc_streaming=True,
        )
        assert fig.backend == "processes"
        assert fig.streaming is True
        tab = ScalabilityConfig(mc_backend="threads")
        assert tab.backend == "threads"
        with pytest.raises(ExperimentError):
            FigureConfig(figure="t", workflow="lu", pfail=1e-3, mc_backend="gpu")


class TestCorrelatedMemoryGuard:
    def test_guard_raises_before_allocation(self, cholesky4):
        from repro.estimators.correlated import CorrelatedNormalEstimator

        model = FixedProbabilityModel(0.1)
        estimator = CorrelatedNormalEstimator(max_matrix_bytes=64)
        with pytest.raises(ReproError) as excinfo:
            estimator.estimate(cholesky4, model)
        message = str(excinfo.value)
        assert str(cholesky4.num_tasks) in message
        assert "bytes" in message

    def test_default_cap_admits_small_graphs(self, cholesky4):
        from repro.estimators.correlated import CorrelatedNormalEstimator

        model = FixedProbabilityModel(0.1)
        result = CorrelatedNormalEstimator().estimate(cholesky4, model)
        assert result.expected_makespan > 0.0

    def test_invalid_cap_rejected(self):
        from repro.estimators.correlated import CorrelatedNormalEstimator

        with pytest.raises(EstimationError):
            CorrelatedNormalEstimator(max_matrix_bytes=0)


class TestBatchedDodinDifferential:
    """Batched reduction rounds must match the scalar reference <= 1e-9."""

    @pytest.mark.parametrize("workflow,size", [
        ("cholesky", 6), ("lu", 5), ("qr", 5),
    ])
    def test_batched_matches_sequential(self, workflow, size):
        from repro.estimators.dodin import DodinEstimator, sequential_dodin_estimate

        graph = build_dag(workflow, size)
        model = ExponentialErrorModel.for_graph(graph, 1e-2)
        batched = DodinEstimator().estimate(graph, model).expected_makespan
        sequential = sequential_dodin_estimate(graph, model)
        assert abs(batched - sequential) <= 1e-9 * abs(sequential)

    def test_batched_matches_sequential_coarse_pruning(self, lu4):
        from repro.estimators.dodin import DodinEstimator, sequential_dodin_estimate

        model = ExponentialErrorModel.for_graph(lu4, 5e-2)
        batched = DodinEstimator(max_support=8).estimate(lu4, model).expected_makespan
        sequential = sequential_dodin_estimate(lu4, model, max_support=8)
        assert abs(batched - sequential) <= 1e-9 * abs(sequential)

    def test_round_metadata_reported(self, cholesky4):
        from repro.estimators.dodin import DodinEstimator

        model = ExponentialErrorModel.for_graph(cholesky4, 1e-2)
        details = DodinEstimator().estimate(cholesky4, model).details
        assert details["reduction_rounds"] >= 1
        assert details["batched"] is True
