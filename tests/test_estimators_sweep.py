"""Unit tests for the discrete topological-sweep estimator (extension)."""

import pytest

from repro.core.generators import chain_graph, fork_join
from repro.core.paths import critical_path_length
from repro.estimators.exact import ExactEstimator
from repro.estimators.registry import get_estimator
from repro.estimators.sculli import SculliEstimator
from repro.estimators.sweep import DiscreteSweepEstimator
from repro.exceptions import EstimationError
from repro.failures.models import ExponentialErrorModel, FixedProbabilityModel


class TestDiscreteSweep:
    def test_exact_on_chains(self):
        g = chain_graph(5, weight=[1.0, 2.0, 0.5, 1.5, 3.0])
        model = ExponentialErrorModel(0.1)
        exact = ExactEstimator().estimate(g, model).expected_makespan
        sweep = DiscreteSweepEstimator(max_support=4096).estimate(g, model)
        assert sweep.expected_makespan == pytest.approx(exact, rel=1e-9)

    def test_exact_on_disjoint_parallel_chains(self):
        """Disjoint chains share no tasks, so the CDF-product maximum over
        their (genuinely independent) completion times is exact."""
        from repro.core.graph import TaskGraph

        g = TaskGraph(name="three-chains")
        for c in range(3):
            previous = None
            for i in range(4):
                tid = f"c{c}_{i}"
                g.add_task(tid, 1.0 + 0.25 * c)
                if previous is not None:
                    g.add_edge(previous, tid)
                previous = tid
        model = FixedProbabilityModel(0.2)
        exact = ExactEstimator().estimate(g, model).expected_makespan
        sweep = DiscreteSweepEstimator(max_support=4096).estimate(g, model)
        assert sweep.expected_makespan == pytest.approx(exact, rel=1e-9)

    def test_overestimates_fork_join(self):
        """In a fork-join the branches share the fork task, so assuming
        independence at the join can only over-estimate the expectation."""
        g = fork_join(4, weight=1.0)
        model = FixedProbabilityModel(0.2)
        exact = ExactEstimator().estimate(g, model).expected_makespan
        sweep = DiscreteSweepEstimator(max_support=4096).estimate(g, model)
        assert sweep.expected_makespan >= exact - 1e-12

    def test_overestimates_with_shared_paths(self, diamond):
        """Ignoring the correlation induced by the shared prefix task makes
        the sweep over-estimate the expectation (same bias as Sculli)."""
        model = FixedProbabilityModel(0.4)
        exact = ExactEstimator().estimate(diamond, model).expected_makespan
        sweep = DiscreteSweepEstimator().estimate(diamond, model).expected_makespan
        assert sweep >= exact - 1e-12

    def test_dominates_failure_free_makespan(self, cholesky4, qr4):
        for graph in (cholesky4, qr4):
            model = ExponentialErrorModel.for_graph(graph, 0.01)
            result = DiscreteSweepEstimator().estimate(graph, model)
            assert result.expected_makespan >= critical_path_length(graph) - 1e-9
            assert result.details["final_support"] <= result.details["max_support"]

    def test_close_to_sculli_on_factorization_dags(self, lu4):
        """Both methods share the independence assumption; with exact
        discrete task laws the sweep should land near Sculli's estimate."""
        model = ExponentialErrorModel.for_graph(lu4, 0.01)
        sweep = DiscreteSweepEstimator().estimate(lu4, model).expected_makespan
        sculli = SculliEstimator().estimate(lu4, model).expected_makespan
        assert sweep == pytest.approx(sculli, rel=0.02)

    def test_zero_rate(self, cholesky4):
        result = DiscreteSweepEstimator().estimate(cholesky4, ExponentialErrorModel(0.0))
        assert result.expected_makespan == pytest.approx(critical_path_length(cholesky4))

    def test_registered(self):
        estimator = get_estimator("discrete-sweep", max_support=32)
        assert isinstance(estimator, DiscreteSweepEstimator)
        assert estimator.max_support == 32

    def test_parameter_validation(self):
        with pytest.raises(EstimationError):
            DiscreteSweepEstimator(max_support=1)
        with pytest.raises(EstimationError):
            DiscreteSweepEstimator(reexecution_factor=0.5)
