"""Unit tests for repro.scheduling (platforms, priorities, CP, HEFT, simulation)."""

import numpy as np
import pytest

from repro.core.generators import chain_graph, fork_join, independent_tasks
from repro.core.paths import critical_path_length
from repro.core.task import Task
from repro.exceptions import SchedulingError
from repro.failures.models import ExponentialErrorModel, FixedProbabilityModel
from repro.scheduling.heft import heft_schedule
from repro.scheduling.list_scheduling import cp_schedule
from repro.scheduling.platform import Platform, Processor
from repro.scheduling.priorities import (
    deterministic_bottom_levels,
    expected_bottom_levels_first_order,
    expected_bottom_levels_sculli,
    upward_ranks,
)
from repro.scheduling.schedule import Schedule
from repro.scheduling.simulation import execute_schedule, expected_schedule_makespan


class TestPlatform:
    def test_homogeneous(self):
        platform = Platform.homogeneous(4)
        assert platform.num_processors == 4
        assert platform.is_homogeneous
        task = Task("t", 2.0)
        assert platform.processor(1).execution_time(task) == 2.0
        assert platform.average_execution_time(task) == 2.0

    def test_heterogeneous(self):
        platform = Platform.heterogeneous([1.0, 2.0, 4.0])
        assert not platform.is_homogeneous
        task = Task("t", 4.0)
        times = platform.execution_times(task)
        assert times == pytest.approx({0: 4.0, 1: 2.0, 2: 1.0})
        assert platform.fastest_processor(task).proc_id == 2

    def test_kernel_specific_speed(self):
        accel = Processor(0, speed=1.0, kernel_speed={"GEMM": 10.0})
        gemm = Task("g", 5.0, kernel="GEMM")
        other = Task("o", 5.0, kernel="TRSM")
        assert accel.execution_time(gemm) == 0.5
        assert accel.execution_time(other) == 5.0

    def test_validation(self):
        with pytest.raises(SchedulingError):
            Platform([])
        with pytest.raises(SchedulingError):
            Platform([Processor(0), Processor(0)])
        with pytest.raises(SchedulingError):
            Processor(0, speed=0.0)
        with pytest.raises(SchedulingError):
            Platform.homogeneous(0)
        with pytest.raises(SchedulingError):
            Platform.homogeneous(2).processor(5)


class TestPriorities:
    def test_deterministic_bottom_levels(self, diamond):
        bl = deterministic_bottom_levels(diamond)
        assert bl["t"] == pytest.approx(1.0)
        assert bl["right"] == pytest.approx(5.0)
        assert bl["s"] == pytest.approx(6.0)

    def test_expected_bottom_levels_exceed_deterministic(self, cholesky4):
        model = ExponentialErrorModel.for_graph(cholesky4, 0.01)
        deterministic = deterministic_bottom_levels(cholesky4)
        first_order = expected_bottom_levels_first_order(cholesky4, model)
        sculli = expected_bottom_levels_sculli(cholesky4, model)
        for tid in cholesky4.task_ids():
            assert first_order[tid] >= deterministic[tid] - 1e-12
            assert sculli[tid] >= deterministic[tid] - 1e-9

    def test_expected_bottom_level_of_sink_matches_task_expectation(self, diamond):
        model = FixedProbabilityModel(0.2)
        first_order = expected_bottom_levels_first_order(diamond, model)
        # The sink's bottom level is just its own expected execution time.
        assert first_order["t"] == pytest.approx(1.0 + 0.2 * 1.0)

    def test_root_expected_bottom_level_equals_first_order_makespan(self, cholesky4):
        """For a single-source graph, the expected bottom level of the source
        is the first-order expected makespan of the whole graph."""
        from repro.estimators.first_order import FirstOrderEstimator

        model = ExponentialErrorModel.for_graph(cholesky4, 0.001)
        levels = expected_bottom_levels_first_order(cholesky4, model)
        source = cholesky4.sources()[0]
        whole = FirstOrderEstimator().estimate(cholesky4, model).expected_makespan
        assert levels[source] == pytest.approx(whole, rel=1e-12)

    def test_upward_ranks_decrease_along_edges(self, lu4):
        platform = Platform.homogeneous(3)
        ranks = upward_ranks(lu4, platform)
        for src, dst in lu4.edges():
            assert ranks[src] > ranks[dst]

    def test_error_aware_upward_ranks_larger(self, lu4):
        platform = Platform.homogeneous(3)
        plain = upward_ranks(lu4, platform)
        model = ExponentialErrorModel.for_graph(lu4, 0.05)
        aware = upward_ranks(lu4, platform, model=model)
        assert all(aware[t] >= plain[t] for t in lu4.task_ids())


class TestCpScheduling:
    def test_single_processor_serialises_all_work(self, cholesky4):
        schedule = cp_schedule(cholesky4, Platform.homogeneous(1))
        assert schedule.makespan == pytest.approx(cholesky4.total_weight())
        assert schedule.utilisation() == pytest.approx(1.0)

    def test_unlimited_processors_reach_critical_path(self, cholesky4):
        schedule = cp_schedule(cholesky4, Platform.homogeneous(cholesky4.num_tasks))
        assert schedule.makespan == pytest.approx(critical_path_length(cholesky4))

    def test_makespan_bounded_by_graham(self, lu4):
        """Any list schedule satisfies M <= W/p + (1 - 1/p) * CP."""
        p = 3
        schedule = cp_schedule(lu4, Platform.homogeneous(p))
        bound = lu4.total_weight() / p + (1 - 1 / p) * critical_path_length(lu4)
        assert schedule.makespan <= bound + 1e-9

    def test_independent_tasks_balanced(self):
        g = independent_tasks(8, weight=1.0)
        schedule = cp_schedule(g, Platform.homogeneous(4))
        assert schedule.makespan == pytest.approx(2.0)

    def test_validation_catches_everything(self, qr4):
        schedule = cp_schedule(qr4, Platform.homogeneous(2))
        schedule.validate()
        assert schedule.is_complete()

    def test_error_aware_priorities_accepted(self, cholesky4):
        model = ExponentialErrorModel.for_graph(cholesky4, 0.01)
        for scheme in ("expected-first-order", "expected-sculli"):
            schedule = cp_schedule(
                cholesky4, Platform.homogeneous(4), priority=scheme, model=model
            )
            schedule.validate()

    def test_error_aware_priority_requires_model(self, diamond):
        with pytest.raises(SchedulingError):
            cp_schedule(diamond, Platform.homogeneous(2), priority="expected-first-order")

    def test_unknown_priority(self, diamond):
        with pytest.raises(SchedulingError):
            cp_schedule(diamond, Platform.homogeneous(2), priority="nope")


class TestHeft:
    def test_prefers_fast_processor(self):
        g = chain_graph(3, weight=[1.0, 1.0, 1.0])
        platform = Platform.heterogeneous([1.0, 10.0])
        schedule = heft_schedule(g, platform)
        # A chain should entirely run on the fast processor.
        assert all(schedule.entry(t).processor == 1 for t in g.task_ids())
        assert schedule.makespan == pytest.approx(0.3)

    def test_valid_on_factorization_dag(self, cholesky4):
        platform = Platform.heterogeneous([1.0, 1.0, 2.0])
        schedule = heft_schedule(cholesky4, platform)
        schedule.validate()
        assert schedule.makespan > 0

    def test_insertion_never_hurts(self, lu4):
        platform = Platform.heterogeneous([1.0, 2.0])
        with_insertion = heft_schedule(lu4, platform, allow_insertion=True)
        without = heft_schedule(lu4, platform, allow_insertion=False)
        assert with_insertion.makespan <= without.makespan + 1e-9

    def test_error_aware_variants_run(self, qr4):
        model = ExponentialErrorModel.for_graph(qr4, 0.02)
        plain = heft_schedule(qr4, Platform.homogeneous(3))
        aware = heft_schedule(qr4, Platform.homogeneous(3), model=model)
        conservative = heft_schedule(
            qr4, Platform.homogeneous(3), model=model, error_aware_placement=True
        )
        for s in (plain, aware, conservative):
            s.validate()
        # Conservative placement plans with inflated durations.
        assert conservative.makespan >= plain.makespan - 1e-9


class TestScheduleObject:
    def test_place_and_query(self, diamond):
        schedule = Schedule(diamond, Platform.homogeneous(2))
        schedule.place("s", 0, 0.0, 1.0)
        assert "s" in schedule and len(schedule) == 1
        assert schedule.entry("s").duration == 1.0
        with pytest.raises(SchedulingError):
            schedule.place("s", 0, 1.0, 2.0)  # already placed
        with pytest.raises(SchedulingError):
            schedule.place("unknown", 0, 0.0, 1.0)
        with pytest.raises(SchedulingError):
            schedule.entry("left")

    def test_validate_detects_violations(self, diamond):
        platform = Platform.homogeneous(1)
        schedule = Schedule(diamond, platform)
        schedule.place("s", 0, 0.0, 1.0)
        with pytest.raises(SchedulingError):
            schedule.validate()  # incomplete
        # Complete it but violate a precedence: left starts before s ends.
        schedule.place("left", 0, 5.0, 7.0)
        schedule.place("right", 0, 1.0, 5.0)
        schedule.place("t", 0, 6.0, 7.0)
        with pytest.raises(SchedulingError):
            schedule.validate()

    def test_to_dict(self, diamond):
        schedule = cp_schedule(diamond, Platform.homogeneous(2))
        payload = schedule.to_dict()
        assert payload["processors"] == 2
        assert len(payload["tasks"]) == 4


class TestExecutionSimulation:
    def test_no_failures_reproduces_planned_makespan(self, cholesky4):
        schedule = cp_schedule(cholesky4, Platform.homogeneous(3))
        trace = execute_schedule(
            schedule, ExponentialErrorModel(0.0), np.random.default_rng(0)
        )
        assert trace.makespan == pytest.approx(schedule.makespan)
        assert trace.total_failures == 0
        assert not trace.failed_tasks

    def test_failures_delay_execution(self, cholesky4):
        schedule = cp_schedule(cholesky4, Platform.homogeneous(3))
        trace = execute_schedule(
            schedule, FixedProbabilityModel(0.5), np.random.default_rng(1)
        )
        assert trace.makespan > schedule.makespan
        assert trace.total_failures > 0

    def test_expected_schedule_makespan(self, diamond):
        schedule = cp_schedule(diamond, Platform.homogeneous(2))
        model = FixedProbabilityModel(0.5)
        mean, distribution = expected_schedule_makespan(schedule, model, trials=400, seed=2)
        assert mean > schedule.makespan
        assert distribution.count == 400
        assert distribution.min() >= schedule.makespan - 1e-12

    def test_error_aware_schedule_no_worse_under_failures(self, cholesky4):
        """With failure-inflated priorities the simulated expected makespan
        should not be (meaningfully) worse than with deterministic ones."""
        model = ExponentialErrorModel.for_graph(cholesky4, 0.05)
        platform = Platform.homogeneous(3)
        plain = cp_schedule(cholesky4, platform, priority="bottom-level")
        aware = cp_schedule(
            cholesky4, platform, priority="expected-first-order", model=model
        )
        mean_plain, _ = expected_schedule_makespan(plain, model, trials=300, seed=3)
        mean_aware, _ = expected_schedule_makespan(aware, model, trials=300, seed=3)
        assert mean_aware <= mean_plain * 1.05

    def test_incomplete_schedule_rejected(self, diamond):
        schedule = Schedule(diamond, Platform.homogeneous(1))
        with pytest.raises(SchedulingError):
            execute_schedule(schedule, FixedProbabilityModel(0.1), np.random.default_rng(0))
