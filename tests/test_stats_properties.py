"""Property-based tests (hypothesis) of the streaming statistics layer.

The streaming accumulators of :mod:`repro.sim.stats` back the million-trial
Monte Carlo runs, so their contracts are checked against randomly shaped
streams instead of a handful of hand-picked cases:

* :class:`QuantileSketch` quantiles stay within one (padded) bin of the
  bracketing order statistics, remain inside ``[min, max]``, are monotone
  in the level, and hit the exact extrema at ``q = 0`` and ``q = 1`` —
  including streams whose later batches escape the frozen grid;
* :meth:`RunningMoments.merge` is associative and agrees with a direct
  update of the concatenated stream;
* :class:`ReservoirSample` includes every stream element with probability
  ``capacity / n`` (checked over a population of fixed seeds).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.rv.empirical import RunningMoments
from repro.sim.stats import P2Quantile, QuantileSketch, ReservoirSample, StreamingSummary

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


def batches_strategy(min_total=8, max_total=400):
    """A stream of 1-4 batches of finite floats."""
    return st.lists(
        st.lists(finite_floats, min_size=1, max_size=max_total // 2),
        min_size=1,
        max_size=4,
    ).filter(lambda chunks: min_total <= sum(len(c) for c in chunks) <= max_total)


class TestQuantileSketchProperties:
    @settings(max_examples=60, deadline=None)
    @given(chunks=batches_strategy(), bins=st.sampled_from([16, 64, 256]))
    def test_quantiles_within_one_bin_of_order_statistics(self, chunks, bins):
        sketch = QuantileSketch(bins=bins)
        for chunk in chunks:
            sketch.update(np.asarray(chunk, dtype=np.float64))
        data = np.concatenate([np.asarray(c, dtype=np.float64) for c in chunks])
        _, edges = sketch.histogram()
        bin_width = float(edges[1] - edges[0])
        for q in (0.1, 0.25, 0.5, 0.75, 0.9):
            value = sketch.quantile(q)
            lower = float(np.quantile(data, q, method="lower"))
            higher = float(np.quantile(data, q, method="higher"))
            if lower < float(edges[0]) or higher > float(edges[-1]):
                # Out-of-grid mass only guarantees finite, monotone
                # quantiles interpolated against the exact extrema.
                assert float(data.min()) - 1e-12 <= value <= float(data.max()) + 1e-12
                continue
            slack = bin_width + 1e-9 * max(1.0, abs(lower), abs(higher))
            # In-grid order statistics: the sketch's inverse-CDF read
            # lands within one bin of the interval they span.
            assert lower - slack <= value <= higher + slack

    @settings(max_examples=60, deadline=None)
    @given(chunks=batches_strategy())
    def test_quantiles_monotone_and_bounded(self, chunks):
        sketch = QuantileSketch(bins=64)
        for chunk in chunks:
            sketch.update(np.asarray(chunk, dtype=np.float64))
        data = np.concatenate([np.asarray(c, dtype=np.float64) for c in chunks])
        levels = np.linspace(0.0, 1.0, 21)
        values = [sketch.quantile(float(q)) for q in levels]
        span = float(data.max() - data.min())
        slack = 1e-9 * (1.0 + span + abs(float(data.max())))
        assert values[0] == float(data.min())
        assert values[-1] == pytest.approx(float(data.max()), abs=slack)
        for lo, hi in zip(values, values[1:]):
            assert lo <= hi + slack
        for v in values:
            assert float(data.min()) - slack <= v <= float(data.max()) + slack

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        scale=st.floats(min_value=1e-3, max_value=1e3),
        tail=st.sampled_from(["low", "high", "both"]),
    )
    def test_out_of_grid_tails_are_tracked(self, seed, scale, tail):
        rng = np.random.default_rng(seed)
        first = rng.uniform(0.0, scale, size=200)
        sketch = QuantileSketch(bins=128)
        sketch.update(first)
        extra = []
        if tail in ("low", "both"):
            extra.append(rng.uniform(-10 * scale, -5 * scale, size=100))
        if tail in ("high", "both"):
            extra.append(rng.uniform(5 * scale, 10 * scale, size=100))
        for chunk in extra:
            sketch.update(chunk)
        data = np.concatenate([first] + extra)
        assert sketch.count == data.size
        assert sketch.quantile(0.0) == pytest.approx(float(data.min()))
        assert sketch.quantile(1.0) == pytest.approx(float(data.max()))
        # The median of the combined stream still lands within the data
        # range and near the exact median (tail segments are interpolated
        # against the running extrema, so allow their span).
        exact = float(np.median(data))
        lo = float(np.quantile(data, 0.35))
        hi = float(np.quantile(data, 0.65))
        assert lo - scale <= sketch.quantile(0.5) <= hi + scale

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16), q=st.sampled_from([0.25, 0.5, 0.9]))
    def test_sketch_agrees_with_p2_reference(self, seed, q):
        rng = np.random.default_rng(seed)
        data = rng.normal(100.0, 10.0, size=4_000)
        sketch = QuantileSketch(bins=512)
        p2 = P2Quantile(q)
        for chunk in np.split(data, 8):
            sketch.update(chunk)
            p2.update(chunk)
        exact = float(np.quantile(data, q))
        span = float(data.max() - data.min())
        assert sketch.quantile(q) == pytest.approx(exact, abs=span / 100)
        assert p2.value() == pytest.approx(exact, abs=span / 20)


class TestRunningMomentsProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        a=st.lists(finite_floats, min_size=0, max_size=200),
        b=st.lists(finite_floats, min_size=0, max_size=200),
        c=st.lists(finite_floats, min_size=1, max_size=200),
    )
    def test_merge_is_associative(self, a, b, c):
        def fold(parts):
            acc = RunningMoments()
            for part in parts:
                m = RunningMoments()
                m.update(np.asarray(part, dtype=np.float64))
                acc.merge(m)
            return acc

        grouped_left = fold([a, b, c])           # ((a ⊕ b) ⊕ c)
        right_inner = RunningMoments()
        right_inner.update(np.asarray(b, dtype=np.float64))
        tail = RunningMoments()
        tail.update(np.asarray(c, dtype=np.float64))
        right_inner.merge(tail)
        grouped_right = fold([a])
        grouped_right.merge(right_inner)         # (a ⊕ (b ⊕ c))

        assert grouped_left.count == grouped_right.count == len(a) + len(b) + len(c)
        scale = max(1.0, abs(grouped_left.mean))
        assert math.isclose(grouped_left.mean, grouped_right.mean,
                            rel_tol=1e-9, abs_tol=1e-9 * scale)
        if grouped_left.count >= 2:
            vscale = max(1.0, abs(grouped_left.variance))
            assert math.isclose(grouped_left.variance, grouped_right.variance,
                                rel_tol=1e-8, abs_tol=1e-8 * vscale)
        assert grouped_left.minimum == grouped_right.minimum
        assert grouped_left.maximum == grouped_right.maximum

    @settings(max_examples=60, deadline=None)
    @given(
        parts=st.lists(
            st.lists(finite_floats, min_size=0, max_size=150),
            min_size=1, max_size=5,
        ).filter(lambda ps: sum(len(p) for p in ps) >= 2)
    )
    def test_merge_matches_direct_concatenation(self, parts):
        merged = RunningMoments()
        for part in parts:
            m = RunningMoments()
            m.update(np.asarray(part, dtype=np.float64))
            merged.merge(m)
        data = np.concatenate(
            [np.asarray(p, dtype=np.float64) for p in parts]
        )
        direct = RunningMoments()
        direct.update(data)
        assert merged.count == direct.count == data.size
        scale = max(1.0, float(np.abs(data).max()))
        assert merged.mean == pytest.approx(direct.mean, rel=1e-9, abs=1e-9 * scale)
        assert merged.variance == pytest.approx(
            direct.variance, rel=1e-8, abs=1e-8 * scale * scale
        )
        assert merged.minimum == direct.minimum
        assert merged.maximum == direct.maximum


class TestReservoirProperties:
    def test_inclusion_probability_is_uniform_over_seeds(self):
        """Every element of a 60-long stream lands in a capacity-10
        reservoir with probability 1/6 (checked over 400 fixed seeds; the
        5-sigma binomial band is ±0.093)."""
        n, capacity, seeds = 60, 10, 400
        stream = np.arange(n, dtype=np.float64)
        hits = np.zeros(n)
        for seed in range(seeds):
            reservoir = ReservoirSample(capacity, rng=np.random.default_rng(seed))
            # Vary the batch boundaries with the seed: the sequential and
            # batched updates must realise the same inclusion law.
            split = 1 + seed % (n - 1)
            reservoir.update(stream[:split])
            reservoir.update(stream[split:])
            hits[np.unique(reservoir.samples()).astype(np.int64)] += 1
        freq = hits / seeds
        expected = capacity / n
        band = 5.0 * math.sqrt(expected * (1 - expected) / seeds)
        assert np.all(np.abs(freq - expected) < band + 0.02)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(1, 300),
        capacity=st.integers(1, 40),
        pieces=st.integers(1, 4),
    )
    def test_reservoir_is_a_subsample_of_the_stream(self, seed, n, capacity, pieces):
        rng = np.random.default_rng(seed)
        stream = rng.normal(size=n)
        reservoir = ReservoirSample(capacity, rng=rng)
        bounds = sorted(rng.integers(0, n + 1, size=pieces - 1).tolist())
        for chunk in np.split(stream, bounds):
            reservoir.update(chunk)
        sample = reservoir.samples()
        assert reservoir.count == n
        assert sample.shape[0] == min(capacity, n)
        assert np.isin(sample, stream).all()
        if n <= capacity:
            np.testing.assert_array_equal(sample, stream)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_streaming_summary_composes_the_accumulators(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(5.0, 2.0, size=2_000)
        summary = StreamingSummary(bins=256, reservoir=64, rng=rng)
        for chunk in np.split(data, 4):
            summary.update(chunk)
        assert summary.moments.count == data.size
        assert summary.moments.mean == pytest.approx(float(data.mean()), rel=1e-12)
        assert summary.quantile(0.0) == float(data.min())
        assert summary.quantile(1.0) == pytest.approx(float(data.max()), rel=1e-12)
        assert summary.reservoir.samples().shape == (64,)
