"""Tests of the zero-copy shared-memory kernel plane (``repro.exec.shm``).

Three layers, mirroring the module's contract:

* **segments** — a dict of arrays packs into one POSIX block with a
  picklable, 64-byte-aligned layout, and attaches back to bit-identical
  zero-copy views (same physical pages, so writes are visible both ways);
* **registry** — publications are content-addressed, deduplicated and
  refcounted; ``REPRO_EXEC_SHM`` picks warm-vs-eager unlinking, and
  ``clear()`` always empties ``/dev/shm``;
* **estimators** — correlated and second-order folds on the ``processes``
  backend are bit-identical to serial/threads at any worker count, the MC
  backend's workers build kernels from the warm segment without ever
  recompiling the schedule, and no run leaks a segment.
"""

import multiprocessing
import os
import threading
import warnings
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.core.kernels import (
    WavefrontKernel,
    schedule_arrays,
    schedule_compilations,
    schedule_for,
    schedule_from_arrays,
    seed_schedule_cache,
)
from repro.estimators.correlated import CorrelatedNormalEstimator
from repro.estimators.second_order import SecondOrderEstimator
from repro.exec.shm import (
    REGISTRY,
    AttachedSegment,
    SegmentRegistry,
    SharedSegment,
    attach_segment,
    content_key,
    detach_segment,
    shm_enabled,
)
from repro.failures.models import ExponentialErrorModel
from repro.workflows.registry import build_dag


def _processes_available() -> bool:
    try:
        with ProcessPoolExecutor(
            max_workers=1, mp_context=multiprocessing.get_context()
        ) as pool:
            return pool.submit(int, 1).result(timeout=60) == 1
    except Exception:
        return False


HAS_PROCESSES = _processes_available()

needs_processes = pytest.mark.skipif(
    not HAS_PROCESSES, reason="process pools unavailable"
)


def _shm_entries():
    base = "/dev/shm"
    if not os.path.isdir(base):  # pragma: no cover - non-POSIX fallback
        return set()
    return {name for name in os.listdir(base) if name.startswith("psm_")}


# ----------------------------------------------------------------------
# content_key
# ----------------------------------------------------------------------
class TestContentKey:
    def test_equal_inputs_equal_keys(self):
        a = np.arange(12, dtype=np.int64)
        assert content_key("s", a, 3) == content_key("s", a.copy(), 3)

    def test_dtype_shape_and_bytes_all_matter(self):
        a = np.arange(12, dtype=np.int64)
        base = content_key(a)
        assert content_key(a.astype(np.int32)) != base
        assert content_key(a.reshape(3, 4)) != base
        tweaked = a.copy()
        tweaked[5] += 1
        assert content_key(tweaked) != base

    def test_scalar_parts_distinguish(self):
        assert content_key("schedule", "up") != content_key("schedule", "down")
        assert content_key(1) != content_key("1")


# ----------------------------------------------------------------------
# SharedSegment / AttachedSegment
# ----------------------------------------------------------------------
class TestSharedSegment:
    def test_pack_attach_round_trip(self):
        arrays = {
            "f": np.linspace(0.0, 1.0, 17),
            "i": np.arange(40, dtype=np.int64).reshape(8, 5),
            "b": np.array([True, False, True]),
            "empty": np.empty(0, dtype=np.float64),
        }
        segment = SharedSegment.create(arrays)
        try:
            attached = AttachedSegment(segment.name, segment.layout)
            try:
                assert set(attached.arrays) == set(arrays)
                for name, source in arrays.items():
                    view = attached.arrays[name]
                    assert view.dtype == source.dtype
                    assert view.shape == source.shape
                    np.testing.assert_array_equal(view, source)
            finally:
                attached.close()
        finally:
            segment.destroy()

    def test_views_are_aligned_and_shared(self):
        segment = SharedSegment.create(
            {"a": np.zeros(3), "b": np.arange(5, dtype=np.int32)}
        )
        try:
            for _name, _dtype, _shape, offset in segment.layout:
                assert offset % 64 == 0
            attached = AttachedSegment(segment.name, segment.layout)
            try:
                # Same physical pages: a write through the owner's view is
                # visible through the attachment (and vice versa).
                segment.arrays["a"][1] = 7.5
                assert attached.arrays["a"][1] == 7.5
                attached.arrays["b"][0] = -3
                assert segment.arrays["b"][0] == -3
            finally:
                attached.close()
        finally:
            segment.destroy()

    def test_layout_is_picklable(self):
        import pickle

        segment = SharedSegment.create({"x": np.arange(4)})
        try:
            layout = pickle.loads(pickle.dumps(segment.layout))
            assert layout == segment.layout
        finally:
            segment.destroy()

    def test_destroy_is_idempotent_and_unlinks(self):
        segment = SharedSegment.create({"x": np.zeros(2)})
        name = segment.name
        segment.destroy()
        segment.destroy()  # second unlink is a no-op, not an error
        assert name not in _shm_entries()

    def test_attach_cache_shares_one_mapping(self):
        segment = SharedSegment.create({"x": np.arange(6)})
        try:
            first = attach_segment(segment.name, segment.layout)
            again = attach_segment(segment.name, segment.layout)
            assert again is first
            detach_segment(segment.name)
            detach_segment(segment.name)  # idempotent
            fresh = attach_segment(segment.name, segment.layout)
            assert fresh is not first
            detach_segment(segment.name)
        finally:
            segment.destroy()


# ----------------------------------------------------------------------
# SegmentRegistry
# ----------------------------------------------------------------------
class TestSegmentRegistry:
    def test_publish_deduplicates_by_key(self):
        registry = SegmentRegistry()
        built = []

        def builder():
            built.append(1)
            return {"x": np.arange(8)}

        try:
            first = registry.publish("k", builder)
            second = registry.publish("k", builder)
            assert second is first
            assert built == [1]  # builder ran on the miss only
            assert (registry.hits, registry.misses) == (1, 1)
            assert registry.contains("k") and len(registry) == 1
        finally:
            registry.clear()

    def test_release_keeps_segment_warm_when_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_SHM", "1")
        registry = SegmentRegistry()
        try:
            segment = registry.publish("k", {"x": np.zeros(3)})
            registry.release("k")
            assert registry.contains("k")
            assert segment.name in _shm_entries()
            assert registry.publish("k", {"x": np.zeros(3)}) is segment
            assert registry.hits == 1
        finally:
            registry.clear()

    def test_release_unlinks_eagerly_when_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_SHM", "0")
        registry = SegmentRegistry()
        segment = registry.publish("k", {"x": np.zeros(3)})
        name = segment.name
        registry.release("k")
        assert not registry.contains("k") and len(registry) == 0
        assert name not in _shm_entries()
        registry.release("k")  # releasing an absent key is a no-op

    def test_refcount_outlives_intermediate_releases(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_SHM", "0")
        registry = SegmentRegistry()
        segment = registry.publish("k", {"x": np.zeros(3)})
        registry.publish("k", {"x": np.zeros(3)})
        registry.release("k")
        assert segment.name in _shm_entries()  # one user still holds it
        registry.release("k")
        assert segment.name not in _shm_entries()

    def test_clear_unlinks_everything(self):
        registry = SegmentRegistry()
        names = [
            registry.publish(key, {"x": np.zeros(2)}).name for key in "abc"
        ]
        registry.clear()
        assert len(registry) == 0
        assert not (_shm_entries() & set(names))
        registry.clear()  # idempotent

    def test_shm_enabled_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXEC_SHM", raising=False)
        assert shm_enabled() and not shm_enabled(default=False)
        for raw, expected in (
            ("1", True), ("true", True), ("YES", True), (" on ", True),
            ("0", False), ("false", False), ("No", False), ("off", False),
        ):
            monkeypatch.setenv("REPRO_EXEC_SHM", raw)
            assert shm_enabled() is expected
        monkeypatch.setenv("REPRO_EXEC_SHM", "banana")
        with warnings.catch_warnings():
            # Unrecognised values warn (once) — covered below; this test
            # only cares about the fallback value.
            warnings.simplefilter("ignore", RuntimeWarning)
            assert shm_enabled() and not shm_enabled(default=False)

    def test_shm_enabled_warns_once_per_unrecognised_value(self, monkeypatch):
        import repro.exec.shm as shm_mod

        monkeypatch.setattr(shm_mod, "_WARNED_SHM_VALUES", set())
        monkeypatch.setenv("REPRO_EXEC_SHM", "flase")
        with pytest.warns(RuntimeWarning, match="unrecognised REPRO_EXEC_SHM"):
            assert shm_enabled() is True
        # Same value again: silent (the knob is consulted on every release,
        # so one typo must not spam a warning per registry operation).
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert shm_enabled() is True
        # A different typo warns again.
        monkeypatch.setenv("REPRO_EXEC_SHM", "treu")
        with pytest.warns(RuntimeWarning, match="'treu'"):
            assert shm_enabled(default=False) is False


# ----------------------------------------------------------------------
# SegmentRegistry under contention (the estimation-server workload)
# ----------------------------------------------------------------------
class TestSegmentRegistryConcurrency:
    def test_same_key_publishers_coalesce_onto_one_build(self):
        registry = SegmentRegistry()
        built = []
        barrier = threading.Barrier(8)
        results = []

        def builder():
            built.append(1)
            return {"x": np.arange(16)}

        def publish():
            barrier.wait()
            results.append(registry.publish("k", builder))

        try:
            threads = [threading.Thread(target=publish) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert built == [1]  # the latch coalesced every publisher
            assert len({id(seg) for seg in results}) == 1
            assert registry.misses == 1 and registry.hits == 7
            assert registry._refs["k"] == 8
        finally:
            registry.clear()

    def test_builder_runs_outside_the_registry_lock(self):
        """A slow publication of key A must not serialise key B's publish."""
        registry = SegmentRegistry()
        a_building = threading.Event()
        a_release = threading.Event()
        b_done = threading.Event()

        def slow_builder():
            a_building.set()
            assert a_release.wait(timeout=10)
            return {"x": np.zeros(4)}

        def publish_a():
            registry.publish("a", slow_builder)

        try:
            thread = threading.Thread(target=publish_a)
            thread.start()
            assert a_building.wait(timeout=10)
            # Key A's builder is mid-flight.  With materialisation under
            # the lock this publish would block until A finishes; built
            # outside it, B completes immediately.
            def publish_b():
                registry.publish("b", {"x": np.zeros(2)})
                b_done.set()

            helper = threading.Thread(target=publish_b)
            helper.start()
            assert b_done.wait(timeout=5), "publish('b') blocked behind key A's build"
            helper.join()
            a_release.set()
            thread.join()
            assert registry.contains("a") and registry.contains("b")
        finally:
            a_release.set()
            registry.clear()

    def test_failed_build_releases_waiters_to_retry(self):
        registry = SegmentRegistry()
        attempts = []
        barrier = threading.Barrier(2)
        outcomes = []

        def flaky_builder():
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("first build dies")
            return {"x": np.ones(8)}

        def publish():
            barrier.wait()
            try:
                outcomes.append(registry.publish("k", flaky_builder))
            except RuntimeError:
                outcomes.append(None)

        try:
            threads = [threading.Thread(target=publish) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            # One publisher saw the failure, the waiter claimed the build
            # and succeeded — the latch never wedges the key.
            assert outcomes.count(None) == 1
            assert registry.contains("k")
            assert len(attempts) == 2
        finally:
            registry.clear()

    def test_hammer_publish_release_attach_refcounts_exact(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_SHM", "1")
        registry = SegmentRegistry()
        keys = [f"hammer-{i}" for i in range(4)]
        errors = []
        before = _shm_entries()

        def worker(seed):
            rng = np.random.default_rng(seed)
            try:
                for step in range(50):
                    key = keys[int(rng.integers(len(keys)))]
                    segment = registry.publish(
                        key, lambda: {"x": np.arange(32, dtype=np.int64)}
                    )
                    attached = attach_segment(segment.name, segment.layout)
                    assert int(attached.arrays["x"][7]) == 7
                    registry.release(key)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not any(t.is_alive() for t in threads), "registry deadlocked"
        assert errors == []
        # Balanced publish/release: every key warm with exactly zero refs.
        assert all(registry._refs[key] == 0 for key in registry._refs)
        registry.clear()
        assert len(registry) == 0 and registry.resident_bytes() == 0
        assert _shm_entries() - before == set()

    def test_hammer_with_concurrent_clears_leaves_shm_empty(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_SHM", "1")
        registry = SegmentRegistry()
        stop = threading.Event()
        errors = []
        before = _shm_entries()

        def churn(seed):
            rng = np.random.default_rng(seed)
            try:
                for step in range(40):
                    key = f"churn-{int(rng.integers(3))}"
                    registry.publish(key, {"x": np.zeros(16)})
                    registry.release(key)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def clearer():
            while not stop.is_set():
                registry.clear()

        threads = [threading.Thread(target=churn, args=(s,)) for s in range(8)]
        sweeper = threading.Thread(target=clearer)
        for t in threads:
            t.start()
        sweeper.start()
        for t in threads:
            t.join(timeout=60)
        stop.set()
        sweeper.join(timeout=60)
        assert not sweeper.is_alive() and not any(t.is_alive() for t in threads)
        assert errors == []
        registry.clear()
        assert _shm_entries() - before == set()

    def test_tracker_monkeypatch_is_locked_and_restored(self, monkeypatch):
        """The pre-3.13 attach fallback must leave ``register`` intact."""
        import repro.exec.shm as shm_mod
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        real_cls = shm_mod.shared_memory.SharedMemory

        def legacy_shared_memory(*args, **kwargs):
            if "track" in kwargs:
                raise TypeError("unexpected keyword argument 'track'")
            return real_cls(*args, **kwargs)

        monkeypatch.setattr(
            shm_mod.shared_memory, "SharedMemory", legacy_shared_memory
        )
        segment = SharedSegment.create({"x": np.arange(8)})
        errors = []

        def attach_loop():
            try:
                for _ in range(20):
                    shm = shm_mod.attach_shared_memory(segment.name)
                    shm.close()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        try:
            threads = [threading.Thread(target=attach_loop) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert errors == []
            # Interleaved save/restore without the lock can leave the
            # no-op lambda installed for good; with it, the original
            # tracker hook always survives the storm.
            assert resource_tracker.register is original_register
        finally:
            segment.destroy()


# ----------------------------------------------------------------------
# SegmentRegistry memory budget
# ----------------------------------------------------------------------
class TestSegmentRegistryBudget:
    def test_budget_trims_lru_zero_ref_segments(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_SHM", "1")
        registry = SegmentRegistry()
        try:
            names = {}
            for key in "abcd":
                names[key] = registry.publish(
                    key, {"x": np.zeros(1024)}
                ).name
                registry.release(key)
            per_segment = registry.resident_bytes() // 4
            registry.set_budget(int(2.5 * per_segment))
            # LRU order is publication order here: a and b go, c and d stay.
            assert not registry.contains("a") and not registry.contains("b")
            assert registry.contains("c") and registry.contains("d")
            assert registry.evictions == 2
            assert registry.resident_bytes() <= registry.budget
            assert names["a"] not in _shm_entries()
            assert names["d"] in _shm_entries()
        finally:
            registry.clear()

    def test_publish_over_budget_evicts_the_coldest(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_SHM", "1")
        registry = SegmentRegistry()
        try:
            registry.publish("old", {"x": np.zeros(1024)})
            registry.release("old")
            per_segment = registry.resident_bytes()
            registry.set_budget(int(1.5 * per_segment))
            registry.publish("new", {"x": np.zeros(1024)})
            assert not registry.contains("old")
            assert registry.contains("new")
            assert registry.resident_bytes() <= registry.budget + per_segment
        finally:
            registry.clear()

    def test_referenced_segments_are_never_evicted(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_SHM", "1")
        registry = SegmentRegistry(budget=0)
        try:
            segment = registry.publish("k", {"x": np.zeros(64)})
            # Over budget but referenced: pinned.
            assert registry.contains("k")
            assert registry.resident_bytes() == segment.nbytes
            registry.release("k")
            # The release lets the budget path reclaim it.
            assert not registry.contains("k")
            assert registry.resident_bytes() == 0
        finally:
            registry.clear()

    def test_evict_force_unlinks_warm_segments_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_SHM", "1")
        registry = SegmentRegistry()
        try:
            name = registry.publish("k", {"x": np.zeros(32)}).name
            assert registry.evict("k") is False  # still referenced
            registry.release("k")
            assert registry.evict("k") is True
            assert registry.evict("k") is False  # unknown now
            assert name not in _shm_entries()
            assert registry.resident_bytes() == 0
        finally:
            registry.clear()

    def test_set_budget_rejects_negative(self):
        registry = SegmentRegistry()
        with pytest.raises(ValueError):
            registry.set_budget(-1)


# ----------------------------------------------------------------------
# Schedule flattening: the zero-recompile path
# ----------------------------------------------------------------------
class TestScheduleSegments:
    def test_round_trip_matches_compiled_schedule(self):
        index = build_dag("lu", 6).index()
        schedule = schedule_for(index, "up")
        rebuilt = schedule_from_arrays(schedule_arrays(schedule))
        assert rebuilt.num_tasks == schedule.num_tasks
        assert rebuilt.max_group_rows == schedule.max_group_rows
        assert rebuilt.max_edge_level_span == schedule.max_edge_level_span
        for name in ("level_indptr", "level_order", "perm", "rank",
                     "group_indptr", "task_level", "row_level"):
            np.testing.assert_array_equal(
                getattr(rebuilt, name), getattr(schedule, name)
            )
        assert len(rebuilt.groups) == len(schedule.groups)
        for ours, theirs in zip(rebuilt.groups, schedule.groups):
            assert (ours.start, ours.stop) == (theirs.start, theirs.stop)
            np.testing.assert_array_equal(ours.preds, theirs.preds)

    def test_rebuild_and_seed_never_recompile(self):
        index = build_dag("cholesky", 5).index()
        arrays = schedule_arrays(schedule_for(index, "up"))
        before = schedule_compilations()
        rebuilt = schedule_from_arrays(arrays)
        # A fresh index (same DAG, empty cache) seeded with the rebuilt
        # schedule serves every downstream consumer without compiling.
        fresh = build_dag("cholesky", 5).index()
        seed_schedule_cache(fresh, "up", rebuilt)
        assert schedule_for(fresh, "up") is rebuilt
        kernel = WavefrontKernel(fresh)
        assert kernel.schedule is rebuilt
        assert schedule_compilations() == before

    def test_round_trip_through_a_real_segment(self):
        index = build_dag("qr", 5).index()
        schedule = schedule_for(index, "up")
        segment = SharedSegment.create(schedule_arrays(schedule))
        try:
            attached = AttachedSegment(segment.name, segment.layout)
            try:
                before = schedule_compilations()
                rebuilt = schedule_from_arrays(attached.arrays)
                assert schedule_compilations() == before
                kernel = WavefrontKernel.from_schedule(rebuilt, direction="up")
                reference = WavefrontKernel(index)
                weights = index.weights.astype(np.float64)
                np.testing.assert_array_equal(
                    kernel.run(weights[None, :]),
                    reference.run(weights[None, :]),
                )
            finally:
                attached.close()
        finally:
            segment.destroy()


# ----------------------------------------------------------------------
# MC processes backend: warm segments, zero worker rebuilds
# ----------------------------------------------------------------------
class TestMonteCarloWarmSegment:
    def test_worker_state_skips_schedule_compilation(self):
        # Build the worker-process slot *in this process* from the exact
        # spec the backend ships, and watch the compile counter: a spec
        # carrying a schedule segment must not recompile, the legacy spec
        # (no segment) must.
        from repro.core.serialize import graph_to_dict
        from repro.sim.executors import _ProcessSpec, _ProcessWorkerState
        from multiprocessing import shared_memory

        graph = build_dag("cholesky", 4)
        model = ExponentialErrorModel.for_graph(graph, 1e-2)
        schedule_segment = SharedSegment.create(
            schedule_arrays(schedule_for(graph.index(), "up"))
        )
        out = shared_memory.SharedMemory(create=True, size=256 * 8)

        def spec(**extra):
            return _ProcessSpec(
                graph_payload=graph_to_dict(graph),
                model=model,
                mode="two-state",
                reexecution_factor=2.0,
                dtype="float64",
                capacity=256,
                shm_name=out.name,
                total_trials=256,
                **extra,
            )

        try:
            before = schedule_compilations()
            warm = _ProcessWorkerState(
                spec(
                    schedule_name=schedule_segment.name,
                    schedule_layout=schedule_segment.layout,
                )
            )
            warm.close()
            assert schedule_compilations() == before  # zero rebuilds
            cold = _ProcessWorkerState(spec())
            cold.close()
            assert schedule_compilations() > before  # legacy path recompiles
        finally:
            detach_segment(schedule_segment.name)
            schedule_segment.destroy()
            out.close()
            out.unlink()

    @needs_processes
    def test_repeated_runs_reuse_one_warm_segment(self, monkeypatch):
        from repro.sim.engine import MonteCarloEngine

        monkeypatch.setenv("REPRO_EXEC_SHM", "1")
        graph = build_dag("lu", 4)
        model = ExponentialErrorModel.for_graph(graph, 1e-2)

        def run():
            return MonteCarloEngine(
                graph, model, trials=2_000, batch_size=512, seed=3,
                workers=2, backend="processes",
            ).run()

        first = run()
        hits = REGISTRY.hits
        size = len(REGISTRY)
        second = run()
        assert REGISTRY.hits > hits  # second run attached the warm segment
        assert len(REGISTRY) == size  # ... instead of publishing a new one
        assert second.mean == first.mean and second.std == first.std


# ----------------------------------------------------------------------
# Estimators on the processes backend: bit-identity and clean exits
# ----------------------------------------------------------------------
@needs_processes
class TestEstimatorProcessParity:
    @pytest.mark.parametrize("backend", ["dense", "banded", "lowrank"])
    def test_correlated_processes_bit_identical(self, backend):
        graph = build_dag("cholesky", 6)
        model = ExponentialErrorModel.for_graph(graph, 1e-3)

        def estimate(**kwargs):
            result = CorrelatedNormalEstimator(
                correlation_backend=backend, **kwargs
            ).estimate(graph, model)
            return (
                result.expected_makespan,
                result.details["makespan_variance"],
            )

        reference = estimate(workers=1)
        assert estimate(workers=2, exec_backend="threads") == reference
        for workers in (1, 2, 3):
            assert (
                estimate(workers=workers, exec_backend="processes")
                == reference
            )

    def test_second_order_processes_bit_identical(self):
        graph = build_dag("qr", 5)
        model = ExponentialErrorModel.for_graph(graph, 1e-2)

        def estimate(**kwargs):
            return SecondOrderEstimator(**kwargs).estimate(
                graph, model
            ).expected_makespan

        reference = estimate(workers=1)
        assert estimate(workers=3, exec_backend="threads") == reference
        for workers in (1, 2, 3):
            assert (
                estimate(workers=workers, exec_backend="processes")
                == reference
            )

    def test_estimates_leave_no_unowned_segments(self):
        graph = build_dag("lu", 5)
        model = ExponentialErrorModel.for_graph(graph, 1e-3)
        owned = lambda: {seg.name for seg in REGISTRY._segments.values()}
        before = _shm_entries() - owned()
        CorrelatedNormalEstimator(
            workers=2, exec_backend="processes"
        ).estimate(graph, model)
        SecondOrderEstimator(
            workers=2, exec_backend="processes"
        ).estimate(graph, model)
        after = _shm_entries() - owned()
        assert after <= before

    def test_registry_clear_reclaims_warm_schedule_segments(self):
        graph = build_dag("cholesky", 5)
        model = ExponentialErrorModel.for_graph(graph, 1e-2)
        CorrelatedNormalEstimator(
            workers=2, exec_backend="processes"
        ).estimate(graph, model)
        warm = {seg.name for seg in REGISTRY._segments.values()}
        REGISTRY.clear()
        assert not (_shm_entries() & warm)


# ----------------------------------------------------------------------
# Compiled-kernel backends across execution backends
# ----------------------------------------------------------------------
def _have_numba() -> bool:
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


_KERNEL_BACKENDS = ["numpy"] + (["numba"] if _have_numba() else [])


@needs_processes
class TestKernelBackendProcessParity:
    """Workers must resolve the parent's *resolved* kernel backend.

    The specs shipped to worker processes carry the backend name
    explicitly, so a per-process environment difference can never make a
    worker disagree with the parent — and because every ported kernel is
    bit-identical to the NumPy reference, results match serial/threads
    at any worker count for every backend (including an unavailable one,
    which degrades to NumPy on both sides).
    """

    @pytest.mark.parametrize("kernel_backend", _KERNEL_BACKENDS)
    @pytest.mark.parametrize("corr_backend", ["banded", "lowrank"])
    def test_correlated_fold_bit_identical(self, corr_backend, kernel_backend):
        graph = build_dag("cholesky", 6)
        model = ExponentialErrorModel.for_graph(graph, 1e-3)

        def estimate(**kwargs):
            result = CorrelatedNormalEstimator(
                correlation_backend=corr_backend,
                kernel_backend=kernel_backend,
                **kwargs,
            ).estimate(graph, model)
            return (
                result.expected_makespan,
                result.details["makespan_variance"],
            )

        reference = estimate(workers=1)
        assert estimate(workers=2, exec_backend="threads") == reference
        for workers in (1, 2, 3):
            assert (
                estimate(workers=workers, exec_backend="processes")
                == reference
            )

    @pytest.mark.parametrize("kernel_backend", _KERNEL_BACKENDS)
    def test_monte_carlo_processes_bit_identical(self, kernel_backend):
        from repro.sim.engine import MonteCarloEngine

        graph = build_dag("lu", 5)
        model = ExponentialErrorModel.for_graph(graph, 1e-2)

        def mean(**kwargs):
            return MonteCarloEngine(
                graph,
                model,
                trials=2_048,
                batch_size=512,
                seed=77,
                kernel_backend=kernel_backend,
                **kwargs,
            ).run().mean

        # threads/processes share the per-batch RNG stream derivation, so
        # they agree with each other at any worker count (serial uses the
        # historical sequential stream and is compared elsewhere).
        reference = mean(workers=2, backend="threads")
        for workers in (1, 2, 3):
            assert mean(workers=workers, backend="processes") == reference

    def test_unavailable_backend_degrades_identically_everywhere(self):
        # "numba" requested but (possibly) not installed: every execution
        # backend must degrade to the same NumPy-reference results.
        graph = build_dag("cholesky", 5)
        model = ExponentialErrorModel.for_graph(graph, 1e-3)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            reference = CorrelatedNormalEstimator(
                correlation_backend="banded", kernel_backend="numpy"
            ).estimate(graph, model)
            requested = CorrelatedNormalEstimator(
                correlation_backend="banded",
                kernel_backend="numba",
                workers=2,
                exec_backend="processes",
            ).estimate(graph, model)
        assert requested.expected_makespan == reference.expected_makespan
        assert requested.details["kernel_backend"] == "numba"

    def test_process_spec_carries_resolved_backend(self, monkeypatch):
        # The spec pins the parent's resolution; a worker-side environment
        # variable must not change it.
        from repro.estimators.correlated import _CorrelatedFoldSpec
        from repro.sim.executors import _ProcessSpec

        assert _CorrelatedFoldSpec.__dataclass_fields__["kernel_backend"]
        assert _ProcessSpec.__dataclass_fields__["kernel_backend"]
