"""Tests of the zero-copy shared-memory kernel plane (``repro.exec.shm``).

Three layers, mirroring the module's contract:

* **segments** — a dict of arrays packs into one POSIX block with a
  picklable, 64-byte-aligned layout, and attaches back to bit-identical
  zero-copy views (same physical pages, so writes are visible both ways);
* **registry** — publications are content-addressed, deduplicated and
  refcounted; ``REPRO_EXEC_SHM`` picks warm-vs-eager unlinking, and
  ``clear()`` always empties ``/dev/shm``;
* **estimators** — correlated and second-order folds on the ``processes``
  backend are bit-identical to serial/threads at any worker count, the MC
  backend's workers build kernels from the warm segment without ever
  recompiling the schedule, and no run leaks a segment.
"""

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.core.kernels import (
    WavefrontKernel,
    schedule_arrays,
    schedule_compilations,
    schedule_for,
    schedule_from_arrays,
    seed_schedule_cache,
)
from repro.estimators.correlated import CorrelatedNormalEstimator
from repro.estimators.second_order import SecondOrderEstimator
from repro.exec.shm import (
    REGISTRY,
    AttachedSegment,
    SegmentRegistry,
    SharedSegment,
    attach_segment,
    content_key,
    detach_segment,
    shm_enabled,
)
from repro.failures.models import ExponentialErrorModel
from repro.workflows.registry import build_dag


def _processes_available() -> bool:
    try:
        with ProcessPoolExecutor(
            max_workers=1, mp_context=multiprocessing.get_context()
        ) as pool:
            return pool.submit(int, 1).result(timeout=60) == 1
    except Exception:
        return False


HAS_PROCESSES = _processes_available()

needs_processes = pytest.mark.skipif(
    not HAS_PROCESSES, reason="process pools unavailable"
)


def _shm_entries():
    base = "/dev/shm"
    if not os.path.isdir(base):  # pragma: no cover - non-POSIX fallback
        return set()
    return {name for name in os.listdir(base) if name.startswith("psm_")}


# ----------------------------------------------------------------------
# content_key
# ----------------------------------------------------------------------
class TestContentKey:
    def test_equal_inputs_equal_keys(self):
        a = np.arange(12, dtype=np.int64)
        assert content_key("s", a, 3) == content_key("s", a.copy(), 3)

    def test_dtype_shape_and_bytes_all_matter(self):
        a = np.arange(12, dtype=np.int64)
        base = content_key(a)
        assert content_key(a.astype(np.int32)) != base
        assert content_key(a.reshape(3, 4)) != base
        tweaked = a.copy()
        tweaked[5] += 1
        assert content_key(tweaked) != base

    def test_scalar_parts_distinguish(self):
        assert content_key("schedule", "up") != content_key("schedule", "down")
        assert content_key(1) != content_key("1")


# ----------------------------------------------------------------------
# SharedSegment / AttachedSegment
# ----------------------------------------------------------------------
class TestSharedSegment:
    def test_pack_attach_round_trip(self):
        arrays = {
            "f": np.linspace(0.0, 1.0, 17),
            "i": np.arange(40, dtype=np.int64).reshape(8, 5),
            "b": np.array([True, False, True]),
            "empty": np.empty(0, dtype=np.float64),
        }
        segment = SharedSegment.create(arrays)
        try:
            attached = AttachedSegment(segment.name, segment.layout)
            try:
                assert set(attached.arrays) == set(arrays)
                for name, source in arrays.items():
                    view = attached.arrays[name]
                    assert view.dtype == source.dtype
                    assert view.shape == source.shape
                    np.testing.assert_array_equal(view, source)
            finally:
                attached.close()
        finally:
            segment.destroy()

    def test_views_are_aligned_and_shared(self):
        segment = SharedSegment.create(
            {"a": np.zeros(3), "b": np.arange(5, dtype=np.int32)}
        )
        try:
            for _name, _dtype, _shape, offset in segment.layout:
                assert offset % 64 == 0
            attached = AttachedSegment(segment.name, segment.layout)
            try:
                # Same physical pages: a write through the owner's view is
                # visible through the attachment (and vice versa).
                segment.arrays["a"][1] = 7.5
                assert attached.arrays["a"][1] == 7.5
                attached.arrays["b"][0] = -3
                assert segment.arrays["b"][0] == -3
            finally:
                attached.close()
        finally:
            segment.destroy()

    def test_layout_is_picklable(self):
        import pickle

        segment = SharedSegment.create({"x": np.arange(4)})
        try:
            layout = pickle.loads(pickle.dumps(segment.layout))
            assert layout == segment.layout
        finally:
            segment.destroy()

    def test_destroy_is_idempotent_and_unlinks(self):
        segment = SharedSegment.create({"x": np.zeros(2)})
        name = segment.name
        segment.destroy()
        segment.destroy()  # second unlink is a no-op, not an error
        assert name not in _shm_entries()

    def test_attach_cache_shares_one_mapping(self):
        segment = SharedSegment.create({"x": np.arange(6)})
        try:
            first = attach_segment(segment.name, segment.layout)
            again = attach_segment(segment.name, segment.layout)
            assert again is first
            detach_segment(segment.name)
            detach_segment(segment.name)  # idempotent
            fresh = attach_segment(segment.name, segment.layout)
            assert fresh is not first
            detach_segment(segment.name)
        finally:
            segment.destroy()


# ----------------------------------------------------------------------
# SegmentRegistry
# ----------------------------------------------------------------------
class TestSegmentRegistry:
    def test_publish_deduplicates_by_key(self):
        registry = SegmentRegistry()
        built = []

        def builder():
            built.append(1)
            return {"x": np.arange(8)}

        try:
            first = registry.publish("k", builder)
            second = registry.publish("k", builder)
            assert second is first
            assert built == [1]  # builder ran on the miss only
            assert (registry.hits, registry.misses) == (1, 1)
            assert registry.contains("k") and len(registry) == 1
        finally:
            registry.clear()

    def test_release_keeps_segment_warm_when_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_SHM", "1")
        registry = SegmentRegistry()
        try:
            segment = registry.publish("k", {"x": np.zeros(3)})
            registry.release("k")
            assert registry.contains("k")
            assert segment.name in _shm_entries()
            assert registry.publish("k", {"x": np.zeros(3)}) is segment
            assert registry.hits == 1
        finally:
            registry.clear()

    def test_release_unlinks_eagerly_when_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_SHM", "0")
        registry = SegmentRegistry()
        segment = registry.publish("k", {"x": np.zeros(3)})
        name = segment.name
        registry.release("k")
        assert not registry.contains("k") and len(registry) == 0
        assert name not in _shm_entries()
        registry.release("k")  # releasing an absent key is a no-op

    def test_refcount_outlives_intermediate_releases(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_SHM", "0")
        registry = SegmentRegistry()
        segment = registry.publish("k", {"x": np.zeros(3)})
        registry.publish("k", {"x": np.zeros(3)})
        registry.release("k")
        assert segment.name in _shm_entries()  # one user still holds it
        registry.release("k")
        assert segment.name not in _shm_entries()

    def test_clear_unlinks_everything(self):
        registry = SegmentRegistry()
        names = [
            registry.publish(key, {"x": np.zeros(2)}).name for key in "abc"
        ]
        registry.clear()
        assert len(registry) == 0
        assert not (_shm_entries() & set(names))
        registry.clear()  # idempotent

    def test_shm_enabled_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXEC_SHM", raising=False)
        assert shm_enabled() and not shm_enabled(default=False)
        for raw, expected in (
            ("1", True), ("true", True), ("YES", True), (" on ", True),
            ("0", False), ("false", False), ("No", False), ("off", False),
        ):
            monkeypatch.setenv("REPRO_EXEC_SHM", raw)
            assert shm_enabled() is expected
        monkeypatch.setenv("REPRO_EXEC_SHM", "banana")
        assert shm_enabled() and not shm_enabled(default=False)


# ----------------------------------------------------------------------
# Schedule flattening: the zero-recompile path
# ----------------------------------------------------------------------
class TestScheduleSegments:
    def test_round_trip_matches_compiled_schedule(self):
        index = build_dag("lu", 6).index()
        schedule = schedule_for(index, "up")
        rebuilt = schedule_from_arrays(schedule_arrays(schedule))
        assert rebuilt.num_tasks == schedule.num_tasks
        assert rebuilt.max_group_rows == schedule.max_group_rows
        assert rebuilt.max_edge_level_span == schedule.max_edge_level_span
        for name in ("level_indptr", "level_order", "perm", "rank",
                     "group_indptr", "task_level", "row_level"):
            np.testing.assert_array_equal(
                getattr(rebuilt, name), getattr(schedule, name)
            )
        assert len(rebuilt.groups) == len(schedule.groups)
        for ours, theirs in zip(rebuilt.groups, schedule.groups):
            assert (ours.start, ours.stop) == (theirs.start, theirs.stop)
            np.testing.assert_array_equal(ours.preds, theirs.preds)

    def test_rebuild_and_seed_never_recompile(self):
        index = build_dag("cholesky", 5).index()
        arrays = schedule_arrays(schedule_for(index, "up"))
        before = schedule_compilations()
        rebuilt = schedule_from_arrays(arrays)
        # A fresh index (same DAG, empty cache) seeded with the rebuilt
        # schedule serves every downstream consumer without compiling.
        fresh = build_dag("cholesky", 5).index()
        seed_schedule_cache(fresh, "up", rebuilt)
        assert schedule_for(fresh, "up") is rebuilt
        kernel = WavefrontKernel(fresh)
        assert kernel.schedule is rebuilt
        assert schedule_compilations() == before

    def test_round_trip_through_a_real_segment(self):
        index = build_dag("qr", 5).index()
        schedule = schedule_for(index, "up")
        segment = SharedSegment.create(schedule_arrays(schedule))
        try:
            attached = AttachedSegment(segment.name, segment.layout)
            try:
                before = schedule_compilations()
                rebuilt = schedule_from_arrays(attached.arrays)
                assert schedule_compilations() == before
                kernel = WavefrontKernel.from_schedule(rebuilt, direction="up")
                reference = WavefrontKernel(index)
                weights = index.weights.astype(np.float64)
                np.testing.assert_array_equal(
                    kernel.run(weights[None, :]),
                    reference.run(weights[None, :]),
                )
            finally:
                attached.close()
        finally:
            segment.destroy()


# ----------------------------------------------------------------------
# MC processes backend: warm segments, zero worker rebuilds
# ----------------------------------------------------------------------
class TestMonteCarloWarmSegment:
    def test_worker_state_skips_schedule_compilation(self):
        # Build the worker-process slot *in this process* from the exact
        # spec the backend ships, and watch the compile counter: a spec
        # carrying a schedule segment must not recompile, the legacy spec
        # (no segment) must.
        from repro.core.serialize import graph_to_dict
        from repro.sim.executors import _ProcessSpec, _ProcessWorkerState
        from multiprocessing import shared_memory

        graph = build_dag("cholesky", 4)
        model = ExponentialErrorModel.for_graph(graph, 1e-2)
        schedule_segment = SharedSegment.create(
            schedule_arrays(schedule_for(graph.index(), "up"))
        )
        out = shared_memory.SharedMemory(create=True, size=256 * 8)

        def spec(**extra):
            return _ProcessSpec(
                graph_payload=graph_to_dict(graph),
                model=model,
                mode="two-state",
                reexecution_factor=2.0,
                dtype="float64",
                capacity=256,
                shm_name=out.name,
                total_trials=256,
                **extra,
            )

        try:
            before = schedule_compilations()
            warm = _ProcessWorkerState(
                spec(
                    schedule_name=schedule_segment.name,
                    schedule_layout=schedule_segment.layout,
                )
            )
            warm.close()
            assert schedule_compilations() == before  # zero rebuilds
            cold = _ProcessWorkerState(spec())
            cold.close()
            assert schedule_compilations() > before  # legacy path recompiles
        finally:
            detach_segment(schedule_segment.name)
            schedule_segment.destroy()
            out.close()
            out.unlink()

    @needs_processes
    def test_repeated_runs_reuse_one_warm_segment(self, monkeypatch):
        from repro.sim.engine import MonteCarloEngine

        monkeypatch.setenv("REPRO_EXEC_SHM", "1")
        graph = build_dag("lu", 4)
        model = ExponentialErrorModel.for_graph(graph, 1e-2)

        def run():
            return MonteCarloEngine(
                graph, model, trials=2_000, batch_size=512, seed=3,
                workers=2, backend="processes",
            ).run()

        first = run()
        hits = REGISTRY.hits
        size = len(REGISTRY)
        second = run()
        assert REGISTRY.hits > hits  # second run attached the warm segment
        assert len(REGISTRY) == size  # ... instead of publishing a new one
        assert second.mean == first.mean and second.std == first.std


# ----------------------------------------------------------------------
# Estimators on the processes backend: bit-identity and clean exits
# ----------------------------------------------------------------------
@needs_processes
class TestEstimatorProcessParity:
    @pytest.mark.parametrize("backend", ["dense", "banded", "lowrank"])
    def test_correlated_processes_bit_identical(self, backend):
        graph = build_dag("cholesky", 6)
        model = ExponentialErrorModel.for_graph(graph, 1e-3)

        def estimate(**kwargs):
            result = CorrelatedNormalEstimator(
                correlation_backend=backend, **kwargs
            ).estimate(graph, model)
            return (
                result.expected_makespan,
                result.details["makespan_variance"],
            )

        reference = estimate(workers=1)
        assert estimate(workers=2, exec_backend="threads") == reference
        for workers in (1, 2, 3):
            assert (
                estimate(workers=workers, exec_backend="processes")
                == reference
            )

    def test_second_order_processes_bit_identical(self):
        graph = build_dag("qr", 5)
        model = ExponentialErrorModel.for_graph(graph, 1e-2)

        def estimate(**kwargs):
            return SecondOrderEstimator(**kwargs).estimate(
                graph, model
            ).expected_makespan

        reference = estimate(workers=1)
        assert estimate(workers=3, exec_backend="threads") == reference
        for workers in (1, 2, 3):
            assert (
                estimate(workers=workers, exec_backend="processes")
                == reference
            )

    def test_estimates_leave_no_unowned_segments(self):
        graph = build_dag("lu", 5)
        model = ExponentialErrorModel.for_graph(graph, 1e-3)
        owned = lambda: {seg.name for seg in REGISTRY._segments.values()}
        before = _shm_entries() - owned()
        CorrelatedNormalEstimator(
            workers=2, exec_backend="processes"
        ).estimate(graph, model)
        SecondOrderEstimator(
            workers=2, exec_backend="processes"
        ).estimate(graph, model)
        after = _shm_entries() - owned()
        assert after <= before

    def test_registry_clear_reclaims_warm_schedule_segments(self):
        graph = build_dag("cholesky", 5)
        model = ExponentialErrorModel.for_graph(graph, 1e-2)
        CorrelatedNormalEstimator(
            workers=2, exec_backend="processes"
        ).estimate(graph, model)
        warm = {seg.name for seg in REGISTRY._segments.values()}
        REGISTRY.clear()
        assert not (_shm_entries() & warm)
