"""Unit tests for repro.core.graph (TaskGraph and GraphIndex)."""

import numpy as np
import pytest

from repro.core.graph import TaskGraph
from repro.exceptions import (
    CycleError,
    DuplicateTaskError,
    GraphError,
    UnknownTaskError,
)


class TestConstruction:
    def test_add_task_and_query(self):
        g = TaskGraph()
        g.add_task("a", 1.5, kernel="GEMM")
        assert "a" in g
        assert g.num_tasks == 1
        assert g.weight("a") == 1.5
        assert g.task("a").kernel == "GEMM"

    def test_duplicate_task_rejected(self):
        g = TaskGraph()
        g.add_task("a", 1.0)
        with pytest.raises(DuplicateTaskError):
            g.add_task("a", 2.0)

    def test_edge_requires_known_endpoints(self):
        g = TaskGraph()
        g.add_task("a", 1.0)
        with pytest.raises(UnknownTaskError):
            g.add_edge("a", "missing")
        with pytest.raises(UnknownTaskError):
            g.add_edge("missing", "a")

    def test_self_loop_rejected(self):
        g = TaskGraph()
        g.add_task("a", 1.0)
        with pytest.raises(GraphError):
            g.add_edge("a", "a")

    def test_duplicate_edge_is_noop(self, chain3):
        before = chain3.num_edges
        chain3.add_edge("a", "b")
        assert chain3.num_edges == before

    def test_remove_edge_and_task(self, diamond):
        diamond.remove_edge("s", "left")
        assert not diamond.has_edge("s", "left")
        diamond.remove_task("left")
        assert "left" not in diamond
        assert diamond.num_tasks == 3

    def test_remove_missing_edge_raises(self, diamond):
        with pytest.raises(GraphError):
            diamond.remove_edge("left", "right")

    def test_set_weight_and_scale(self, chain3):
        chain3.set_weight("b", 10.0)
        assert chain3.weight("b") == 10.0
        chain3.scale_weights(0.5)
        assert chain3.weight("b") == 5.0
        assert chain3.weight("a") == 0.5


class TestQueries:
    def test_degrees_and_neighbours(self, diamond):
        assert set(diamond.successors("s")) == {"left", "right"}
        assert set(diamond.predecessors("t")) == {"left", "right"}
        assert diamond.in_degree("t") == 2
        assert diamond.out_degree("s") == 2

    def test_sources_and_sinks(self, diamond, non_sp_graph):
        assert diamond.sources() == ["s"]
        assert diamond.sinks() == ["t"]
        assert set(non_sp_graph.sources()) == {"a", "b"}
        assert set(non_sp_graph.sinks()) == {"c", "d"}

    def test_total_and_mean_weight(self, diamond):
        assert diamond.total_weight() == pytest.approx(8.0)
        assert diamond.mean_weight() == pytest.approx(2.0)

    def test_mean_weight_empty_graph_raises(self):
        with pytest.raises(GraphError):
            TaskGraph().mean_weight()

    def test_edges_listing(self, chain3):
        assert chain3.edges() == [("a", "b"), ("b", "c")]

    def test_len_and_iter(self, chain3):
        assert len(chain3) == 3
        assert list(chain3) == ["a", "b", "c"]


class TestTopologicalOrder:
    def test_chain_order(self, chain3):
        assert chain3.topological_order() == ["a", "b", "c"]

    def test_order_respects_all_edges(self, cholesky4):
        order = cholesky4.topological_order()
        position = {tid: i for i, tid in enumerate(order)}
        for src, dst in cholesky4.edges():
            assert position[src] < position[dst]

    def test_cycle_detection(self):
        g = TaskGraph()
        for name in "abc":
            g.add_task(name, 1.0)
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("c", "a")
        assert not g.is_acyclic()
        with pytest.raises(CycleError):
            g.topological_order()


class TestIndex:
    def test_index_shapes(self, diamond):
        idx = diamond.index()
        assert idx.num_tasks == 4
        assert idx.num_edges == 4
        assert idx.weights.shape == (4,)
        assert idx.pred_indptr.shape == (5,)
        assert idx.pred_indices.shape == (4,)

    def test_index_adjacency_matches_graph(self, cholesky4):
        idx = cholesky4.index()
        for tid in cholesky4.task_ids():
            i = idx.index_of[tid]
            preds = {idx.task_ids[j] for j in idx.predecessors(i)}
            assert preds == set(cholesky4.predecessors(tid))
            succs = {idx.task_ids[j] for j in idx.successors(i)}
            assert succs == set(cholesky4.successors(tid))

    def test_index_cache_invalidated_on_mutation(self, chain3):
        idx1 = chain3.index()
        assert chain3.index() is idx1  # cached
        chain3.add_task("d", 1.0)
        assert chain3.index() is not idx1

    def test_source_and_sink_indices(self, diamond):
        idx = diamond.index()
        assert [idx.task_ids[i] for i in idx.source_indices()] == ["s"]
        assert [idx.task_ids[i] for i in idx.sink_indices()] == ["t"]

    def test_weights_are_readonly(self, diamond):
        idx = diamond.index()
        with pytest.raises(ValueError):
            idx.weights[0] = 99.0


class TestCopiesAndConversions:
    def test_copy_is_deep_structurally(self, diamond):
        clone = diamond.copy()
        clone.set_weight("left", 100.0)
        clone.add_task("extra", 1.0)
        assert diamond.weight("left") == 2.0
        assert "extra" not in diamond

    def test_with_doubled_task(self, diamond):
        doubled = diamond.with_doubled_task("right")
        assert doubled.weight("right") == 8.0
        assert diamond.weight("right") == 4.0

    def test_subgraph(self, diamond):
        sub = diamond.subgraph(["s", "left", "t"])
        assert sub.num_tasks == 3
        assert sub.has_edge("s", "left")
        assert sub.has_edge("left", "t")
        assert not sub.has_edge("s", "t")

    def test_subgraph_unknown_task(self, diamond):
        with pytest.raises(UnknownTaskError):
            diamond.subgraph(["s", "nope"])

    def test_networkx_roundtrip(self, diamond):
        nx_graph = diamond.to_networkx()
        back = TaskGraph.from_networkx(nx_graph)
        assert set(back.task_ids()) == set(diamond.task_ids())
        assert set(back.edges()) == set(diamond.edges())
        assert back.weight("right") == diamond.weight("right")

    def test_networkx_default_weight(self):
        import networkx as nx

        g = nx.DiGraph()
        g.add_edge("x", "y")
        back = TaskGraph.from_networkx(g)
        assert back.weight("x") == 1.0
