"""Property-based determinism tests of the shared execution service.

The contract of :class:`repro.exec.ParallelService` (mirroring the
executor-backend properties of ``tests/test_executor_properties.py``): the
outcome of a run is a pure function of the partition list — for *any*
client partition set,

* ``threads`` at any worker count produces results bit-identical to
  ``serial`` (with or without per-partition RNG streams, with or without
  worker slots);
* ``processes`` matches ``threads`` exactly (where the platform can spawn
  a pool);
* early stopping folds the same partitions in the same order at any
  worker count;
* the estimator clients riding the service (second-order sweeps, Dodin
  rounds) inherit those properties end to end.
"""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import EstimationError
from repro.exec import (
    EXEC_BACKENDS,
    ParallelService,
    partition_stream,
    resolve_exec_backend,
    resolve_workers,
)
from repro.failures.models import ExponentialErrorModel
from repro.workflows.registry import build_dag


def _processes_available() -> bool:
    try:
        with ProcessPoolExecutor(
            max_workers=1, mp_context=multiprocessing.get_context()
        ) as pool:
            return pool.submit(int, 1).result(timeout=60) == 1
    except Exception:
        return False


HAS_PROCESSES = _processes_available()


def _transform(item, slot, rng):
    """A deterministic partition function exercising the rng stream."""
    size = int(item) % 7 + 1
    base = np.full(size, float(item))
    if rng is not None:
        base = base + rng.standard_normal(size)
    return float(base.sum())


def _slot_transform(item, slot, rng):
    """A partition function computing through per-worker slot scratch."""
    scratch = slot["scratch"]
    scratch[:] = 0.0
    scratch[: int(item) % scratch.size + 1] = float(item)
    value = float(scratch.sum())
    if rng is not None:
        value += float(rng.random())
    return value


def _make_slots(k):
    return [{"scratch": np.empty(8, dtype=np.float64)} for _ in range(k)]


partition_lists = st.lists(st.integers(0, 1000), min_size=0, max_size=40)


class TestBackendResolution:
    def test_default_resolution(self):
        assert resolve_exec_backend(None, 1) == "serial"
        assert resolve_exec_backend(None, 4) == "threads"

    def test_explicit_names(self):
        for name in EXEC_BACKENDS:
            workers = 1 if name == "serial" else 2
            assert resolve_exec_backend(name, workers) == name

    def test_unknown_backend_rejected(self):
        with pytest.raises(EstimationError):
            resolve_exec_backend("gpu", 1)

    def test_serial_with_many_workers_rejected(self):
        with pytest.raises(EstimationError):
            ParallelService(workers=4, backend="serial")

    def test_worker_count_validation(self):
        with pytest.raises(EstimationError):
            ParallelService(workers=0)

    def test_partition_stream_matches_seedsequence_spawn(self):
        root = np.random.SeedSequence(7)
        children = root.spawn(4)
        for i in range(4):
            a = np.random.default_rng(children[i]).random(8)
            b = partition_stream(7, i).random(8)
            assert np.array_equal(a, b)


class TestWorkerResolution:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_EST_WORKERS", raising=False)
        assert resolve_workers() == 1
        assert resolve_workers(3) == 3

    def test_env_fills_unset_knob_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_EST_WORKERS", "5")
        assert resolve_workers() == 5
        # An explicit argument wins over the environment (the correlation
        # knobs' convention).
        assert resolve_workers(2) == 2

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_EST_WORKERS", "zero")
        with pytest.raises(EstimationError):
            resolve_workers()
        monkeypatch.setenv("REPRO_EST_WORKERS", "0")
        with pytest.raises(EstimationError):
            resolve_workers()

    def test_invalid_default_rejected(self, monkeypatch):
        monkeypatch.delenv("REPRO_EST_WORKERS", raising=False)
        with pytest.raises(EstimationError):
            resolve_workers(0)


class TestThreadsDeterminism:
    @settings(max_examples=20, deadline=None)
    @given(
        items=partition_lists,
        workers=st.integers(1, 6),
        entropy=st.one_of(st.none(), st.integers(0, 2**16)),
    )
    def test_threads_bit_identical_to_serial(self, items, workers, entropy):
        serial = ParallelService(workers=1).run(_transform, items, entropy=entropy)
        threads = ParallelService(workers=workers, backend="threads").run(
            _transform, items, entropy=entropy
        )
        assert serial == threads

    @settings(max_examples=15, deadline=None)
    @given(
        items=partition_lists,
        workers=st.tuples(st.integers(1, 5), st.integers(1, 5)),
        entropy=st.integers(0, 2**16),
    )
    def test_threads_identical_across_worker_counts_with_slots(
        self, items, workers, entropy
    ):
        a = ParallelService(workers=workers[0], backend="threads").run(
            _slot_transform, items, slots=_make_slots(workers[0]), entropy=entropy
        )
        b = ParallelService(workers=workers[1], backend="threads").run(
            _slot_transform, items, slots=_make_slots(workers[1]), entropy=entropy
        )
        serial = ParallelService(workers=1).run(
            _slot_transform, items, slots=_make_slots(1), entropy=entropy
        )
        assert a == b == serial

    @settings(max_examples=15, deadline=None)
    @given(
        items=st.lists(st.integers(0, 1000), min_size=1, max_size=40),
        workers=st.tuples(st.integers(1, 5), st.integers(1, 5)),
        threshold=st.integers(0, 1000),
        use_slots=st.booleans(),
    )
    def test_early_stop_folds_same_prefix(self, items, workers, threshold, use_slots):
        def run(k):
            folded = []

            def consume(index, result):
                folded.append((index, result))
                return items[index] >= threshold

            ParallelService(workers=k, backend="threads").run(
                _transform,
                items,
                slots=_make_slots(k) if use_slots else None,
                entropy=11,
                consume=consume,
            )
            return folded

        a, b = run(workers[0]), run(workers[1])
        assert a == b
        # The fold is an in-order prefix that stops at the trigger.
        indices = [i for i, _ in a]
        assert indices == list(range(len(indices)))
        triggers = [i for i, item in enumerate(items) if item >= threshold]
        if triggers:
            assert indices[-1] == triggers[0]
        else:
            assert len(indices) == len(items)


@pytest.mark.skipif(not HAS_PROCESSES, reason="process pools unavailable")
class TestProcessesDeterminism:
    """Process pools are slow to spin up, so a small fixed case set."""

    @pytest.mark.parametrize("seed,count,workers", [
        (3, 9, 2),
        (17, 25, 3),
    ])
    def test_processes_match_threads_exactly(self, seed, count, workers):
        rng = np.random.default_rng(seed)
        items = [int(v) for v in rng.integers(0, 1000, size=count)]
        threads = ParallelService(workers=workers, backend="threads").run(
            _transform, items, entropy=seed
        )
        processes = ParallelService(workers=workers, backend="processes").run(
            _transform, items, entropy=seed
        )
        assert processes == threads

    def test_processes_early_stop_matches_threads(self):
        items = [5, 900, 3, 950, 1]

        def run(backend):
            folded = []

            def consume(index, result):
                folded.append((index, result))
                return items[index] >= 900

            ParallelService(workers=2, backend=backend).run(
                _transform, items, entropy=0, consume=consume
            )
            return folded

        assert run("processes") == run("threads")


class TestServiceClients:
    """The analytical estimators riding the service stay worker-invariant."""

    @pytest.fixture(scope="class")
    def case(self):
        graph = build_dag("lu", 5)
        model = ExponentialErrorModel.for_graph(graph, 1e-2)
        return graph, model

    def test_second_order_bit_identical_across_workers(self, case):
        from repro.estimators.second_order import SecondOrderEstimator

        graph, model = case
        values = {
            SecondOrderEstimator(workers=k).estimate(graph, model).expected_makespan
            for k in (1, 2, 4)
        }
        assert len(values) == 1

    def test_dodin_differential_holds_at_any_worker_count(self, case):
        from repro.estimators.dodin import DodinEstimator, sequential_dodin_estimate

        graph, model = case
        reference = sequential_dodin_estimate(graph, model)
        for k in (1, 3):
            value = DodinEstimator(workers=k).estimate(graph, model).expected_makespan
            assert value == pytest.approx(reference, rel=1e-9)

    def test_correlated_bit_identical_across_workers(self, case):
        from repro.estimators.correlated import CorrelatedNormalEstimator

        graph, model = case
        results = [
            CorrelatedNormalEstimator(
                correlation_backend="banded", workers=k
            ).estimate(graph, model)
            for k in (1, 2, 5)
        ]
        assert len({r.expected_makespan for r in results}) == 1
        assert len({r.details["makespan_variance"] for r in results}) == 1

    def test_workers_recorded_in_details(self, case):
        from repro.estimators.correlated import CorrelatedNormalEstimator
        from repro.estimators.second_order import SecondOrderEstimator

        graph, model = case
        corr = CorrelatedNormalEstimator(workers=2).estimate(graph, model)
        assert corr.details["fold_workers"] == 2
        second = SecondOrderEstimator(workers=3).estimate(graph, model)
        assert second.details["sweep_workers"] == 3

    def test_env_knob_feeds_estimators(self, case, monkeypatch):
        from repro.estimators.correlated import CorrelatedNormalEstimator
        from repro.estimators.dodin import DodinEstimator

        monkeypatch.setenv("REPRO_EST_WORKERS", "3")
        assert CorrelatedNormalEstimator().workers == 3
        assert DodinEstimator().workers == 3
        # An explicit argument wins over the environment.
        assert CorrelatedNormalEstimator(workers=1).workers == 1
