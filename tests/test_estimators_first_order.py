"""Unit tests for the first-order estimator (the paper's contribution)."""

import numpy as np
import pytest

from repro.core.generators import chain_graph, erdos_renyi_dag, independent_tasks
from repro.core.graph import TaskGraph
from repro.core.paths import critical_path_length
from repro.estimators.exact import ExactEstimator
from repro.estimators.first_order import FirstOrderEstimator, first_order_expected_makespan
from repro.exceptions import EstimationError
from repro.failures.models import ExponentialErrorModel, FixedProbabilityModel


class TestClosedFormCases:
    def test_single_task(self):
        """For one task, E = (1-λa)·a + λa·2a exactly at first order."""
        g = TaskGraph()
        g.add_task("t", 2.0)
        lam = 0.01
        estimate = first_order_expected_makespan(g, lam)
        assert estimate == pytest.approx(2.0 + lam * 2.0 * 2.0)

    def test_chain_adds_per_task_corrections(self):
        """On a chain every task is critical: E = d(G) + λ Σ a_i²."""
        weights = [1.0, 2.0, 3.0, 4.0]
        g = chain_graph(4, weight=weights)
        lam = 0.005
        expected = sum(weights) + lam * sum(w * w for w in weights)
        assert first_order_expected_makespan(g, lam) == pytest.approx(expected)

    def test_independent_tasks_only_longest_matters(self):
        """Doubling a non-critical short task does not change the makespan."""
        g = independent_tasks(3, weight=[1.0, 2.0, 5.0])
        lam = 0.01
        # Only the 5.0 task extends the makespan when doubled (1->2 and 2->4
        # both stay below 5).
        expected = 5.0 + lam * 5.0 * 5.0
        assert first_order_expected_makespan(g, lam) == pytest.approx(expected)

    def test_diamond(self, diamond):
        lam = 0.002
        d = critical_path_length(diamond)  # 6 via s-right-t
        # Doubling: s -> 7, right -> 10, t -> 7, left -> max(6, 1+4+1=6... )
        # left doubled: path s-left-t = 1+4+1 = 6 = d, so no increase.
        expected = d + lam * (1.0 * 1.0 + 4.0 * 4.0 + 1.0 * 1.0)
        assert first_order_expected_makespan(diamond, lam) == pytest.approx(expected)

    def test_zero_rate_gives_failure_free_makespan(self, cholesky4):
        assert first_order_expected_makespan(cholesky4, 0.0) == pytest.approx(
            critical_path_length(cholesky4)
        )


class TestModes:
    @pytest.mark.parametrize("graph_fixture", ["cholesky4", "lu4", "qr4", "small_random_dag"])
    def test_fast_equals_naive(self, graph_fixture, request):
        graph = request.getfixturevalue(graph_fixture)
        model = ExponentialErrorModel.for_graph(graph, 0.01)
        fast = FirstOrderEstimator(mode="fast").estimate(graph, model)
        naive = FirstOrderEstimator(mode="naive").estimate(graph, model)
        assert fast.expected_makespan == pytest.approx(naive.expected_makespan, rel=1e-12)

    def test_invalid_mode(self):
        with pytest.raises(EstimationError):
            FirstOrderEstimator(mode="bogus")

    def test_fast_is_not_slower_asymptotically(self, rng):
        # Not a benchmark, just a smoke check that both run on a larger graph.
        g = erdos_renyi_dag(120, 0.05, rng=rng)
        model = ExponentialErrorModel.for_graph(g, 0.001)
        fast = FirstOrderEstimator(mode="fast").estimate(g, model)
        naive = FirstOrderEstimator(mode="naive").estimate(g, model)
        assert fast.expected_makespan == pytest.approx(naive.expected_makespan)


class TestAccuracyAndStructure:
    def test_result_fields(self, cholesky4):
        model = ExponentialErrorModel.for_graph(cholesky4, 0.001)
        result = FirstOrderEstimator().estimate(cholesky4, model)
        assert result.method == "first-order"
        assert result.num_tasks == cholesky4.num_tasks
        assert result.error_rate == pytest.approx(model.error_rate)
        assert result.failure_free_makespan == pytest.approx(critical_path_length(cholesky4))
        assert result.expected_makespan >= result.failure_free_makespan
        assert result.wall_time >= 0.0
        assert result.details["num_critical_tasks"] >= 1

    def test_estimate_above_failure_free_bound(self, lu4, qr4):
        for graph in (lu4, qr4):
            model = ExponentialErrorModel.for_graph(graph, 0.01)
            result = FirstOrderEstimator().estimate(graph, model)
            assert result.expected_makespan >= critical_path_length(graph)

    def test_first_order_error_scales_linearly_then_quadratically(self, small_random_dag):
        """The neglected terms are O(λ²): halving p_fail should shrink the
        error against the exact value by roughly 4x."""
        graph = small_random_dag
        exact = ExactEstimator()
        errors = []
        for pfail in (0.04, 0.02, 0.01):
            model = ExponentialErrorModel.for_graph(graph, pfail)
            reference = exact.estimate(graph, model).expected_makespan
            estimate = FirstOrderEstimator().estimate(graph, model).expected_makespan
            errors.append(abs(estimate - reference) / reference)
        assert errors[0] > errors[1] > errors[2]
        assert errors[0] / errors[1] == pytest.approx(4.0, rel=0.35)
        assert errors[1] / errors[2] == pytest.approx(4.0, rel=0.35)

    def test_matches_exact_to_first_order(self, small_random_dag):
        model = ExponentialErrorModel.for_graph(small_random_dag, 0.001)
        exact = ExactEstimator().estimate(small_random_dag, model).expected_makespan
        approx = FirstOrderEstimator().estimate(small_random_dag, model).expected_makespan
        assert approx == pytest.approx(exact, rel=1e-4)

    def test_exact_probability_variant_close_to_default(self, cholesky4):
        model = ExponentialErrorModel.for_graph(cholesky4, 0.01)
        default = FirstOrderEstimator().estimate(cholesky4, model).expected_makespan
        variant = FirstOrderEstimator(use_exact_probabilities=True).estimate(
            cholesky4, model
        ).expected_makespan
        assert variant == pytest.approx(default, rel=1e-2)
        assert variant != default  # they differ at order λ²

    def test_supports_fixed_probability_model(self, diamond):
        model = FixedProbabilityModel(0.1)
        result = FirstOrderEstimator().estimate(diamond, model)
        # every task fails w.p. 0.1; correction = 0.1 * (1 + 4 + 1)
        assert result.expected_makespan == pytest.approx(6.0 + 0.1 * 6.0)

    def test_empty_graph_rejected(self):
        with pytest.raises(EstimationError):
            FirstOrderEstimator().estimate(TaskGraph(), ExponentialErrorModel(0.01))

    def test_monotone_in_error_rate(self, qr4):
        estimates = [
            first_order_expected_makespan(qr4, lam) for lam in (0.0, 0.01, 0.05, 0.1)
        ]
        assert estimates == sorted(estimates)
