"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.graph import TaskGraph
from repro.core.generators import erdos_renyi_dag
from repro.failures.models import ExponentialErrorModel, FixedProbabilityModel
from repro.workflows.cholesky import cholesky_dag
from repro.workflows.lu import lu_dag
from repro.workflows.qr import qr_dag


@pytest.fixture
def rng():
    """A deterministic NumPy random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def chain3() -> TaskGraph:
    """Three tasks in a chain: a(1) -> b(2) -> c(3)."""
    g = TaskGraph(name="chain3")
    g.add_task("a", 1.0)
    g.add_task("b", 2.0)
    g.add_task("c", 3.0)
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    return g


@pytest.fixture
def diamond() -> TaskGraph:
    """The classic diamond: s -> {left, right} -> t."""
    g = TaskGraph(name="diamond")
    g.add_task("s", 1.0)
    g.add_task("left", 2.0)
    g.add_task("right", 4.0)
    g.add_task("t", 1.0)
    g.add_edge("s", "left")
    g.add_edge("s", "right")
    g.add_edge("left", "t")
    g.add_edge("right", "t")
    return g


@pytest.fixture
def non_sp_graph() -> TaskGraph:
    """The smallest non-series-parallel DAG (the 'N' / interdiction graph).

    Edges: a->c, a->d, b->d (plus b has no edge to c), so the graph cannot be
    reduced by series/parallel operations.
    """
    g = TaskGraph(name="N-graph")
    g.add_task("a", 1.0)
    g.add_task("b", 2.0)
    g.add_task("c", 3.0)
    g.add_task("d", 4.0)
    g.add_edge("a", "c")
    g.add_edge("a", "d")
    g.add_edge("b", "d")
    return g


@pytest.fixture
def small_random_dag() -> TaskGraph:
    """A 10-task random DAG, small enough for exact enumeration."""
    return erdos_renyi_dag(10, 0.35, rng=7, name="small-random")


@pytest.fixture
def cholesky4() -> TaskGraph:
    """The Cholesky DAG for k = 4 (20 tasks)."""
    return cholesky_dag(4)


@pytest.fixture
def lu4() -> TaskGraph:
    """The LU DAG for k = 4 (30 tasks)."""
    return lu_dag(4)


@pytest.fixture
def qr4() -> TaskGraph:
    """The QR DAG for k = 4 (30 tasks)."""
    return qr_dag(4)


@pytest.fixture
def model_1em2() -> ExponentialErrorModel:
    """An exponential model with rate chosen directly (λ = 0.01)."""
    return ExponentialErrorModel(0.01)


@pytest.fixture
def fixed_model() -> FixedProbabilityModel:
    """A weight-independent failure probability of 5%."""
    return FixedProbabilityModel(0.05)
