"""Tests of the estimation service (``repro.service``).

Four layers, mirroring the package:

* **protocol** — JSON-lines framing round-trips exactly (floats included)
  and malformed requests fail with :class:`ServiceError`, not crashes;
* **cache** — concurrent identical requests coalesce onto one entry build
  (exactly one schedule compilation), LRU eviction honours the byte
  budget, and pinned entries are never torn down mid-request;
* **pool** — ParallelService instances are leased warm and restored, one
  fresh report per lease;
* **server** — end-to-end over a real socket: answers are bit-identical
  to single-shot :func:`repro.estimate_expected_makespan` runs for every
  estimator family, one compile per DAG across N concurrent clients, the
  cache budget bounds resident segment bytes over a fresh-DAG sweep, and
  request errors never kill the connection.
"""

import json
import threading

import numpy as np
import pytest

from repro import estimate_expected_makespan
from repro.core.kernels import schedule_compilations
from repro.core.serialize import graph_from_dict, graph_to_dict
from repro.exceptions import ExperimentError, ServiceError
from repro.exec.shm import REGISTRY, SegmentRegistry
from repro.experiments.config import service_cache_bytes, service_workers
from repro.failures.models import ExponentialErrorModel
from repro.service import (
    EstimationRequest,
    EstimationServer,
    ScheduleCache,
    ServiceClient,
    ServicePool,
    build_entry,
    decode_message,
    encode_message,
    request_key,
)
from repro.workflows.registry import build_dag


def _fresh_graph(tag: float, workflow: str = "cholesky", size: int = 4):
    """A paper DAG with content-unique weights (a fresh cache key per tag)."""
    payload = graph_to_dict(build_dag(workflow, size))
    for task in payload["tasks"]:
        task["weight"] = task["weight"] * (1.0 + tag * 1e-6)
    return graph_from_dict(payload)


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_message_framing_round_trips_floats_exactly(self):
        payload = {"op": "estimate", "pfail": 0.1 + 0.2, "x": [1e-300, 3.14]}
        line = encode_message(payload)
        assert line.endswith(b"\n") and b"\n" not in line[:-1]
        assert decode_message(line) == payload

    def test_decode_rejects_junk(self):
        with pytest.raises(ServiceError, match="malformed"):
            decode_message(b"{nope\n")
        with pytest.raises(ServiceError, match="JSON objects"):
            decode_message(b"[1, 2]\n")

    def test_request_round_trip(self):
        graph = build_dag("lu", 3)
        request = EstimationRequest.from_dict(
            {
                "op": "estimate",
                "id": 7,
                "graph": graph_to_dict(graph),
                "pfail": 1e-2,
                "methods": ["normal", "dodin"],
                "options": {"monte-carlo": {"trials": 10, "seed": 3}},
            }
        )
        assert request.methods == ("normal", "dodin")
        assert EstimationRequest.from_dict(request.to_dict()) == request

    def test_request_validation(self):
        graph_payload = graph_to_dict(build_dag("lu", 3))
        cases = [
            ({"op": "frobnicate"}, "unknown op"),
            ({}, "needs 'graph' or 'workflow'"),
            (
                {"graph": graph_payload, "workflow": "lu", "size": 3},
                "not both",
            ),
            ({"workflow": "lu"}, "integer 'size'"),
            ({"workflow": "lu", "size": "big"}, "'size' must be an integer"),
            ({"graph": graph_payload, "pfail": 0.0}, "must be in"),
            ({"graph": graph_payload, "pfail": "often"}, "must be a number"),
            ({"graph": graph_payload, "methods": []}, "non-empty list"),
            ({"graph": graph_payload, "methods": [3]}, "non-empty list"),
            ({"graph": graph_payload, "options": {"mc": 3}}, "kwargs objects"),
            ({"graph": [1]}, "JSON object"),
        ]
        for payload, match in cases:
            with pytest.raises(ServiceError, match=match):
                EstimationRequest.from_dict(payload)

    def test_stats_request_ignores_graph_fields(self):
        request = EstimationRequest.from_dict({"op": "stats", "id": "x"})
        assert request.op == "stats" and request.request_id == "x"
        assert request.to_dict() == {"op": "stats", "id": "x"}

    def test_client_refuses_unreachable_server(self):
        with pytest.raises(ServiceError, match="cannot reach"):
            ServiceClient("127.0.0.1", 9, timeout=0.5)


# ----------------------------------------------------------------------
# config resolvers
# ----------------------------------------------------------------------
class TestServiceKnobs:
    def test_cache_bytes_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE_CACHE_BYTES", raising=False)
        assert service_cache_bytes() is None
        assert service_cache_bytes(1 << 20) == 1 << 20
        monkeypatch.setenv("REPRO_SERVICE_CACHE_BYTES", "4096")
        assert service_cache_bytes(1 << 20) == 4096  # environment wins
        monkeypatch.setenv("REPRO_SERVICE_CACHE_BYTES", "lots")
        with pytest.raises(ExperimentError, match="REPRO_SERVICE_CACHE_BYTES"):
            service_cache_bytes()
        monkeypatch.setenv("REPRO_SERVICE_CACHE_BYTES", "-1")
        with pytest.raises(ExperimentError, match=">= 0"):
            service_cache_bytes()

    def test_workers_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE_WORKERS", raising=False)
        assert service_workers() is None
        assert service_workers(3) == 3
        monkeypatch.setenv("REPRO_SERVICE_WORKERS", "8")
        assert service_workers(3) == 8
        monkeypatch.setenv("REPRO_SERVICE_WORKERS", "many")
        with pytest.raises(ExperimentError, match="REPRO_SERVICE_WORKERS"):
            service_workers()
        monkeypatch.setenv("REPRO_SERVICE_WORKERS", "0")
        with pytest.raises(ExperimentError, match=">= 1"):
            service_workers()


# ----------------------------------------------------------------------
# ServicePool
# ----------------------------------------------------------------------
class TestServicePool:
    def test_lease_restore_reuses_the_instance(self):
        pool = ServicePool()
        try:
            first = pool.lease(workers=2)
            report = first.report
            pool.restore(first)
            again = pool.lease(workers=2)
            assert again is first
            assert again.report is not report  # fresh per-estimate report
            assert pool.created == 1 and pool.leases == 2
        finally:
            pool.close_all()

    def test_distinct_knobs_get_distinct_services(self):
        pool = ServicePool()
        try:
            a = pool.lease(workers=1)
            b = pool.lease(workers=2)
            assert a is not b
            pool.restore(a)
            pool.restore(b)
            assert pool.lease(workers=2) is b
        finally:
            pool.close_all()

    def test_restore_after_close_all_closes_the_stray(self):
        pool = ServicePool()
        service = pool.lease(workers=1)
        pool.close_all()
        pool.restore(service)  # unknown to the pool now: closed, not enqueued
        assert pool.lease(workers=1) is not service
        pool.close_all()


# ----------------------------------------------------------------------
# ScheduleCache
# ----------------------------------------------------------------------
class TestScheduleCache:
    def test_concurrent_identical_requests_build_once(self):
        registry = SegmentRegistry()
        cache = ScheduleCache(registry=registry)
        graph = _fresh_graph(1.0)
        key = request_key(graph)
        barrier = threading.Barrier(6)
        builds = []
        entries = []

        def builder():
            builds.append(1)
            return build_entry(graph, registry)

        def hit():
            barrier.wait()
            entry, _built = cache.get_or_build(key, builder)
            entries.append(entry)
            cache.release(entry)

        try:
            before = schedule_compilations()
            threads = [threading.Thread(target=hit) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert builds == [1]
            assert schedule_compilations() - before == 1
            assert len({id(e) for e in entries}) == 1
            assert cache.misses == 1 and cache.hits == 5
        finally:
            cache.clear()
            registry.clear()

    def test_lru_eviction_honours_max_bytes(self):
        registry = SegmentRegistry()
        graphs = [_fresh_graph(float(tag)) for tag in range(5)]
        probe = build_entry(graphs[0], registry)
        entry_bytes = probe.nbytes
        probe.dispose(registry)
        cache = ScheduleCache(max_bytes=int(2.5 * entry_bytes), registry=registry)
        try:
            for graph in graphs:
                entry, _ = cache.get_or_build(
                    request_key(graph), lambda g=graph: build_entry(g, registry)
                )
                cache.release(entry)
                assert cache.resident_bytes() <= cache.max_bytes
            stats = cache.stats()
            assert stats["entries"] == 2
            assert stats["evictions"] == 3
            # All five graphs share one structural schedule segment (the
            # segment key excludes weights); the surviving entries pin it.
            assert len(registry) == 1
        finally:
            cache.clear()
            registry.clear()

    def test_pinned_entries_survive_eviction_pressure(self):
        registry = SegmentRegistry()
        graph = _fresh_graph(9.0)
        cache = ScheduleCache(max_bytes=0, registry=registry)
        try:
            entry, built = cache.get_or_build(
                request_key(graph), lambda: build_entry(graph, registry)
            )
            assert built
            # Over budget but pinned: still resident.
            assert cache.contains(entry.key)
            other = _fresh_graph(10.0)
            other_entry, _ = cache.get_or_build(
                request_key(other), lambda: build_entry(other, registry)
            )
            cache.release(other_entry)  # unpinned sibling goes immediately
            assert not cache.contains(other_entry.key)
            assert cache.contains(entry.key)
            cache.release(entry)
            assert not cache.contains(entry.key)
            assert cache.resident_bytes() == 0
        finally:
            cache.clear()
            registry.clear()

    def test_failed_build_releases_the_latch(self):
        cache = ScheduleCache()
        with pytest.raises(RuntimeError, match="boom"):
            cache.get_or_build("k", lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        graph = _fresh_graph(11.0)
        registry = SegmentRegistry()
        try:
            entry, built = cache.get_or_build(
                "k", lambda: build_entry(graph, registry)
            )
            assert built and entry.graph is graph
        finally:
            cache.clear()
            registry.clear()

    def test_request_key_is_structural_not_nominal(self):
        graph = build_dag("lu", 4)
        renamed = build_dag("lu", 4)
        assert request_key(graph) == request_key(renamed)
        reweighted = _fresh_graph(3.0, "lu", 4)
        assert request_key(graph) != request_key(reweighted)


# ----------------------------------------------------------------------
# EstimationServer end to end
# ----------------------------------------------------------------------
class TestEstimationServer:
    def test_estimates_bit_identical_to_single_shot_runs(self):
        graph = build_dag("cholesky", 5)
        model = ExponentialErrorModel.for_graph(graph, 1e-3)
        methods = ["first-order", "normal", "dodin", "normal-correlated",
                   "second-order", "monte-carlo"]
        options = {"monte-carlo": {"trials": 2000, "seed": 11}}
        with EstimationServer() as server:
            with ServiceClient(port=server.port) as client:
                first = client.estimate(
                    graph, pfail=1e-3, methods=methods, options=options
                )
                again = client.estimate(
                    graph, pfail=1e-3, methods=methods, options=options
                )
        assert first["ok"] and not first["cached"]
        assert again["ok"] and again["cached"]
        for response in (first, again):
            for estimate in response["estimates"]:
                direct = estimate_expected_makespan(
                    graph,
                    model,
                    method=estimate["method"],
                    **options.get(estimate["method"], {}),
                )
                assert estimate["expected_makespan"] == direct.expected_makespan
                assert (
                    estimate["failure_free_makespan"]
                    == direct.failure_free_makespan
                )

    def test_workflow_requests_resolve_the_generator(self):
        with EstimationServer() as server:
            with ServiceClient(port=server.port) as client:
                response = client.estimate(
                    workflow="lu", size=4, methods=["first-order"]
                )
        direct = build_dag("lu", 4)
        assert response["num_tasks"] == direct.num_tasks
        assert response["key"] == request_key(direct)

    def test_concurrent_identical_requests_compile_once(self):
        graph = _fresh_graph(101.0)
        payload = graph_to_dict(graph)
        clients = 6
        barrier = threading.Barrier(clients)
        responses = []
        errors = []
        with EstimationServer(workers=clients) as server:

            def fire():
                try:
                    with ServiceClient(port=server.port) as client:
                        barrier.wait()
                        responses.append(
                            client.estimate(payload, methods=["normal"])
                        )
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            before = schedule_compilations()
            threads = [threading.Thread(target=fire) for _ in range(clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert errors == []
        assert len(responses) == clients
        # One compilation for the whole burst, exactly one cache miss.
        assert schedule_compilations() - before == 1
        assert sum(1 for r in responses if not r["cached"]) == 1
        values = {r["estimates"][0]["expected_makespan"] for r in responses}
        assert len(values) == 1

    def test_cache_budget_bounds_resident_segments_on_fresh_sweep(self):
        registry = SegmentRegistry()
        probe_graph = _fresh_graph(200.0)
        probe = build_entry(probe_graph, registry)
        entry_bytes = probe.nbytes
        probe.dispose(registry)
        registry.clear()
        budget = int(2.5 * entry_bytes)
        with EstimationServer(cache_bytes=budget, registry=registry) as server:
            with ServiceClient(port=server.port) as client:
                for tag in range(6):
                    response = client.estimate(
                        graph_to_dict(_fresh_graph(300.0 + tag)),
                        methods=["normal"],
                    )
                    assert response["ok"] and not response["cached"]
                stats = client.stats()
        assert stats["cache"]["max_bytes"] == budget
        assert stats["cache"]["resident_bytes"] <= budget
        assert stats["cache"]["entries"] <= 2
        assert stats["cache"]["evictions"] >= 4
        # The registry budget was armed too: warm /dev/shm stays bounded.
        assert stats["registry"]["resident_bytes"] <= budget
        # Shutdown released everything owned by this private registry.
        assert len(registry) == 0 and registry.resident_bytes() == 0

    def test_request_errors_do_not_kill_the_connection(self):
        with EstimationServer() as server:
            with ServiceClient(port=server.port) as client:
                bad = client.request({"op": "estimate"})
                assert bad["ok"] is False and "graph" in bad["error"]
                with pytest.raises(ServiceError, match="unknown estimator"):
                    client.estimate(
                        workflow="lu", size=3, methods=["astrology"]
                    )
                raw = client.request(json.loads('{"op": "stats", "id": 5}'))
                assert raw["ok"] and raw["id"] == 5
                assert raw["errors"] == 2 and raw["requests"] == 3
                good = client.estimate(
                    workflow="lu", size=3, methods=["first-order"]
                )
                assert good["ok"]

    def test_malformed_line_gets_an_error_response(self):
        with EstimationServer() as server:
            response = decode_message(server.handle_line(b"this is not json\n"))
        assert response["ok"] is False and "malformed" in response["error"]

    def test_pooled_services_are_reused_across_requests(self):
        graph = build_dag("cholesky", 4)
        with EstimationServer() as server:
            with ServiceClient(port=server.port) as client:
                for _ in range(3):
                    client.estimate(
                        graph,
                        methods=["dodin"],
                        options={"dodin": {"workers": 2}},
                    )
                key = request_key(graph)
                assert server.cache.contains(key)
                entry, _ = server.cache.get_or_build(
                    key, lambda: pytest.fail("expected a cache hit")
                )
                try:
                    assert entry.pool.created == 1
                    assert entry.pool.leases == 3
                finally:
                    server.cache.release(entry)

    def test_stop_is_idempotent_and_releases_the_port(self):
        server = EstimationServer()
        server.start()
        port = server.port
        server.stop()
        server.stop()
        with pytest.raises(ServiceError):
            ServiceClient(port=port, timeout=0.5)
