"""Tests for the level-wavefront longest-path kernels (repro.core.kernels).

The kernels are differential-tested against a straight per-task reference
implementation of the recurrence (the pre-kernel code path) on every
registered workflow generator plus random synthetic DAGs; float64 results
must be *bit-identical*, float32 within a small relative tolerance.
"""

import numpy as np
import pytest

from repro.core.generators import (
    erdos_renyi_dag,
    fork_join,
    layered_random_dag,
    random_out_tree,
)
from repro.core.graph import TaskGraph, compute_level_structure
from repro.core.kernels import WavefrontKernel, normalize_dtype, wavefront_kernel
from repro.core.paths import (
    batched_makespans,
    critical_path_length,
    downward_lengths,
    makespan_with_weights,
    upward_lengths,
)
from repro.exceptions import GraphError
from repro.sim.longest_path import batch_makespans_with_details
from repro.workflows.registry import available_workflows, build_dag


# ----------------------------------------------------------------------
# Reference implementations: the pre-kernel per-task recurrences.
# ----------------------------------------------------------------------
def reference_batched_makespans(idx, weight_matrix):
    w = np.asarray(weight_matrix, dtype=np.float64)
    num_scenarios = w.shape[0]
    if idx.num_tasks == 0:
        return np.zeros(num_scenarios, dtype=np.float64)
    completion = np.zeros((num_scenarios, idx.num_tasks), dtype=np.float64)
    indptr, indices = idx.pred_indptr, idx.pred_indices
    for i in idx.topo_order:
        preds = indices[indptr[i] : indptr[i + 1]]
        if preds.size:
            completion[:, i] = w[:, i] + completion[:, preds].max(axis=1)
        else:
            completion[:, i] = w[:, i]
    return completion.max(axis=1)


def reference_upward(idx, w):
    up = np.zeros(idx.num_tasks, dtype=np.float64)
    indptr, indices = idx.pred_indptr, idx.pred_indices
    for i in idx.topo_order:
        preds = indices[indptr[i] : indptr[i + 1]]
        up[i] = w[i] + (up[preds].max() if preds.size else 0.0)
    return up


def reference_downward(idx, w):
    down = np.zeros(idx.num_tasks, dtype=np.float64)
    indptr, indices = idx.succ_indptr, idx.succ_indices
    for i in idx.topo_order[::-1]:
        succs = indices[indptr[i] : indptr[i + 1]]
        down[i] = w[i] + (down[succs].max() if succs.size else 0.0)
    return down


def random_weight_matrix(idx, trials, seed):
    rng = np.random.default_rng(seed)
    return idx.weights[None, :] * rng.uniform(0.5, 2.5, size=(trials, idx.num_tasks))


SYNTHETIC_DAGS = [
    erdos_renyi_dag(25, 0.25, rng=1, name="er-dense"),
    erdos_renyi_dag(40, 0.08, rng=2, name="er-sparse"),
    layered_random_dag(5, 6, edge_probability=0.5, rng=3),
    fork_join(17),
    random_out_tree(31, max_children=4, rng=4),
]


class TestLevelStructure:
    @pytest.mark.parametrize("workflow", available_workflows())
    def test_levels_are_valid(self, workflow):
        idx = build_dag(workflow, 5).index()
        indptr, order = idx.level_structure()
        assert indptr[0] == 0 and indptr[-1] == idx.num_tasks
        assert np.all(np.diff(indptr) > 0)
        assert sorted(order.tolist()) == list(range(idx.num_tasks))
        # Every predecessor must lie in a strictly lower level, and at
        # least one exactly one level below.
        level_of = np.empty(idx.num_tasks, dtype=np.int64)
        for level in range(len(indptr) - 1):
            level_of[order[indptr[level] : indptr[level + 1]]] = level
        for i in range(idx.num_tasks):
            preds = idx.predecessors(i)
            if preds.size == 0:
                assert level_of[i] == 0
            else:
                assert np.all(level_of[preds] < level_of[i])
                assert level_of[preds].max() == level_of[i] - 1

    def test_chain_has_one_task_per_level(self, chain3):
        idx = chain3.index()
        assert idx.num_levels == 3
        assert np.array_equal(np.diff(idx.level_indptr), [1, 1, 1])

    def test_independent_tasks_form_one_level(self):
        g = TaskGraph()
        for i in range(4):
            g.add_task(i, 1.0)
        assert g.index().num_levels == 1

    def test_empty_graph(self):
        idx = TaskGraph().index()
        assert idx.num_levels == 0
        assert idx.level_order.shape == (0,)

    def test_reverse_direction_levels(self, diamond):
        idx = diamond.index()
        indptr, order = compute_level_structure(
            idx.succ_indptr, idx.pred_indptr, idx.pred_indices
        )
        # Reversed diamond: t is the only source of the reversed graph.
        assert indptr[-1] == 4
        assert order[0] == idx.index_of["t"]

    def test_structure_is_cached(self, diamond):
        idx = diamond.index()
        assert idx.level_structure()[0] is idx.level_structure()[0]


class TestKernelDifferential:
    @pytest.mark.parametrize("workflow", available_workflows())
    def test_bitexact_on_workflows(self, workflow):
        for size in (2, 5):
            idx = build_dag(workflow, size).index()
            w = random_weight_matrix(idx, 13, seed=size)
            expected = reference_batched_makespans(idx, w)
            assert np.array_equal(batched_makespans(idx, w), expected)

    @pytest.mark.parametrize("graph", SYNTHETIC_DAGS, ids=lambda g: g.name)
    def test_bitexact_on_synthetic_dags(self, graph):
        idx = graph.index()
        w = random_weight_matrix(idx, 11, seed=0)
        expected = reference_batched_makespans(idx, w)
        assert np.array_equal(batched_makespans(idx, w), expected)

    @pytest.mark.parametrize("graph", SYNTHETIC_DAGS, ids=lambda g: g.name)
    def test_matches_per_trial_critical_path(self, graph):
        idx = graph.index()
        w = random_weight_matrix(idx, 7, seed=42)
        batched = batched_makespans(idx, w)
        singles = [makespan_with_weights(idx, row) for row in w]
        assert np.array_equal(batched, np.asarray(singles))

    @pytest.mark.parametrize("workflow", available_workflows())
    def test_up_down_bitexact(self, workflow):
        idx = build_dag(workflow, 4).index()
        rng = np.random.default_rng(3)
        w = idx.weights * rng.uniform(0.5, 2.0, size=idx.num_tasks)
        assert np.array_equal(upward_lengths(idx, w), reference_upward(idx, w))
        assert np.array_equal(downward_lengths(idx, w), reference_downward(idx, w))

    def test_details_match_reference(self, cholesky4):
        idx = cholesky4.index()
        w = random_weight_matrix(idx, 9, seed=8)
        makespans, argmax = batch_makespans_with_details(idx, w)
        expected = reference_batched_makespans(idx, w)
        assert np.array_equal(makespans, expected)
        # argmax points at a task whose completion realises the makespan
        for t in range(w.shape[0]):
            assert makespans[t] == pytest.approx(expected[t])
            assert 0 <= argmax[t] < idx.num_tasks

    def test_float32_tolerance(self):
        idx = build_dag("cholesky", 10).index()
        w = random_weight_matrix(idx, 64, seed=5)
        exact = batched_makespans(idx, w)
        approx = batched_makespans(idx, w, dtype="float32")
        assert approx.dtype == np.float32
        rel = np.abs(approx.astype(np.float64) - exact) / exact
        assert rel.max() < 1e-5


class TestKernelEdgeCases:
    def test_empty_graph(self):
        idx = TaskGraph().index()
        assert batched_makespans(idx, np.zeros((4, 0))).tolist() == [0.0] * 4
        assert upward_lengths(idx).shape == (0,)
        assert downward_lengths(idx).shape == (0,)

    def test_single_task(self):
        g = TaskGraph()
        g.add_task("only", 2.5)
        out = batched_makespans(g, np.array([[2.5], [5.0]]))
        assert out.tolist() == [2.5, 5.0]
        assert upward_lengths(g).tolist() == [2.5]

    def test_zero_scenarios(self, diamond):
        # An empty scenario batch is valid and returns an empty result,
        # as it did before the kernel refactor.
        out = batched_makespans(diamond, np.empty((0, 4)))
        assert out.shape == (0,)
        makespans, argmax = batch_makespans_with_details(
            diamond.index(), np.empty((0, 4))
        )
        assert makespans.shape == (0,) and argmax.shape == (0,)

    def test_disconnected_tasks(self):
        g = TaskGraph()
        for i, w in enumerate([1.0, 5.0, 3.0]):
            g.add_task(i, w)
        idx = g.index()
        assert critical_path_length(idx) == pytest.approx(5.0)
        out = batched_makespans(idx, idx.weights[None, :] * 2.0)
        assert out.tolist() == [10.0]

    def test_disconnected_sink_component(self):
        # Two components: a chain and an isolated heavy sink.
        g = TaskGraph()
        g.add_task("a", 1.0)
        g.add_task("b", 2.0)
        g.add_task("lonely", 10.0)
        g.add_edge("a", "b")
        idx = g.index()
        expected = reference_batched_makespans(idx, idx.weights[None, :])
        assert np.array_equal(batched_makespans(idx, idx.weights[None, :]), expected)
        assert expected[0] == pytest.approx(10.0)

    def test_shape_validation(self, diamond):
        with pytest.raises(GraphError):
            batched_makespans(diamond, np.ones((2, 3)))
        with pytest.raises(GraphError):
            WavefrontKernel(diamond).lengths(np.ones(3))

    def test_invalid_dtype_rejected(self, diamond):
        with pytest.raises(GraphError):
            batched_makespans(diamond, np.ones((1, 4)), dtype="int32")
        with pytest.raises(GraphError):
            normalize_dtype("float16")

    def test_invalid_direction_rejected(self, diamond):
        with pytest.raises(GraphError):
            WavefrontKernel(diamond, direction="sideways")


class TestKernelBufferReuse:
    def test_buffer_allocated_once_and_grows(self, cholesky4):
        kernel = WavefrontKernel(cholesky4)
        view8 = kernel.weight_view(8)
        buf = kernel._buffer
        assert view8.shape == (cholesky4.num_tasks, 8)
        # Smaller or equal requests reuse the same allocation.
        kernel.weight_view(4)
        kernel.weight_view(8)
        assert kernel._buffer is buf
        # Larger requests grow it.
        kernel.weight_view(16)
        assert kernel._buffer is not buf
        assert kernel.capacity == 16

    def test_repeated_runs_reuse_buffer(self, lu4):
        idx = lu4.index()
        kernel = WavefrontKernel(idx)
        w = random_weight_matrix(idx, 12, seed=1)
        first = kernel.run(w)
        buf = kernel._buffer
        second = kernel.run(w)
        assert kernel._buffer is buf
        assert np.array_equal(first, second)
        assert np.array_equal(first, reference_batched_makespans(idx, w))

    def test_shared_kernel_cached_on_index(self, qr4):
        idx = qr4.index()
        assert wavefront_kernel(idx) is wavefront_kernel(idx)
        assert wavefront_kernel(idx) is not wavefront_kernel(idx, dtype="float32")
        assert wavefront_kernel(idx) is not wavefront_kernel(idx, direction="down")

    def test_release_drops_buffers(self, lu4):
        kernel = WavefrontKernel(lu4)
        kernel.weight_view(4)
        assert kernel.buffer_nbytes > 0
        kernel.release()
        assert kernel.buffer_nbytes == 0
        assert kernel.capacity == 0

    def test_partial_width_propagation(self, cholesky4):
        # Propagating fewer trials than the buffer capacity must be correct
        # (the engine's final partial batch exercises this path).
        idx = cholesky4.index()
        kernel = WavefrontKernel(idx)
        kernel.weight_view(32)
        w = random_weight_matrix(idx, 5, seed=9)
        out = kernel.run(w)
        assert kernel.capacity == 32
        assert np.array_equal(out, reference_batched_makespans(idx, w))


class TestVectorisedIndexBuild:
    @pytest.mark.parametrize("graph", SYNTHETIC_DAGS, ids=lambda g: g.name)
    def test_csr_matches_adjacency_dicts(self, graph):
        idx = graph.index()
        for i, tid in enumerate(idx.task_ids):
            assert {idx.task_ids[j] for j in idx.predecessors(i)} == set(
                graph.predecessors(tid)
            )
            assert {idx.task_ids[j] for j in idx.successors(i)} == set(
                graph.successors(tid)
            )

    def test_counts_match(self, cholesky4):
        idx = cholesky4.index()
        assert idx.num_edges == cholesky4.num_edges
        assert int(idx.pred_indptr[-1]) == idx.num_edges
        assert int(idx.succ_indptr[-1]) == idx.num_edges

    def test_segments_are_canonical_regardless_of_edge_insertion_order(self):
        # Neighbour order must not depend on the order edges were added:
        # the content-addressed schedule keys and the kernels' reduction
        # order both read these arrays.
        g = TaskGraph()
        for t in ("a", "b", "c", "d"):
            g.add_task(t, 1.0)
        g.add_edge("a", "d")
        g.add_edge("a", "b")
        g.add_edge("a", "c")
        idx = g.index()
        assert [idx.task_ids[j] for j in idx.successors(0)] == ["b", "c", "d"]
        assert g.successors("a") == ["b", "c", "d"]

        h = TaskGraph()
        for t in ("a", "b", "c", "d"):
            h.add_task(t, 1.0)
        for dst in ("c", "b", "d"):
            h.add_edge("a", dst)
        assert np.array_equal(h.index().succ_indices, idx.succ_indices)
        assert np.array_equal(h.index().pred_indices, idx.pred_indices)


class TestScheduleMetadata:
    """PR 4: edge level-span metadata compiled onto the LevelSchedule."""

    def test_task_and_row_levels_consistent(self, cholesky4):
        from repro.core.kernels import schedule_for

        index = cholesky4.index()
        schedule = schedule_for(index, "up")
        level_indptr, level_order = index.level_structure()
        for level in range(schedule.num_levels):
            tasks = level_order[level_indptr[level] : level_indptr[level + 1]]
            assert set(schedule.task_level[tasks].tolist()) == {level}
        np.testing.assert_array_equal(
            schedule.row_level, schedule.task_level[schedule.perm]
        )

    def test_max_edge_level_span_matches_bruteforce(self):
        from repro.core.kernels import schedule_for

        for workflow in ("cholesky", "lu", "qr", "stencil"):
            graph = build_dag(workflow, 5)
            index = graph.index()
            schedule = schedule_for(index, "up")
            level = schedule.task_level
            spans = [
                int(level[i] - level[p])
                for i in range(index.num_tasks)
                for p in index.predecessors(i)
            ]
            assert schedule.max_edge_level_span == max(spans)

    def test_skip_edge_widens_the_span(self):
        from repro.core.kernels import schedule_for

        g = TaskGraph(name="skip")
        for t in ("a", "b", "c", "d"):
            g.add_task(t, 1.0)
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("c", "d")
        g.add_edge("a", "d")  # spans three levels
        schedule = schedule_for(g.index(), "up")
        assert schedule.max_edge_level_span == 3

    def test_edge_free_graph_has_zero_span(self):
        from repro.core.kernels import schedule_for

        g = TaskGraph(name="independent")
        for t in ("a", "b", "c"):
            g.add_task(t, 1.0)
        schedule = schedule_for(g.index(), "up")
        assert schedule.max_edge_level_span == 0
        assert schedule.num_levels == 1

    def test_down_schedule_has_its_own_metadata(self, cholesky4):
        from repro.core.kernels import schedule_for

        index = cholesky4.index()
        down = schedule_for(index, "down")
        assert down.max_edge_level_span >= 1
        assert down.task_level.shape == (index.num_tasks,)
        np.testing.assert_array_equal(
            down.row_level, down.task_level[down.perm]
        )


class TestGroupPartitionMetadata:
    """PR 5: degree-group partition metadata for the execution service."""

    @pytest.mark.parametrize("workflow", ["cholesky", "lu", "qr", "stencil"])
    def test_group_indptr_partitions_the_groups(self, workflow):
        from repro.core.kernels import schedule_for

        schedule = schedule_for(build_dag(workflow, 5).index(), "up")
        indptr = schedule.group_indptr
        assert indptr.shape == (schedule.num_levels + 1,)
        assert indptr[0] == 0 and indptr[-1] == len(schedule.groups)
        assert np.all(np.diff(indptr) >= 0)
        # Level 0 has no incoming edges, hence no groups.
        assert indptr[1] == 0
        for level in range(schedule.num_levels):
            groups = schedule.level_groups(level)
            lo, hi = int(schedule.level_indptr[level]), int(
                schedule.level_indptr[level + 1]
            )
            assert all(lo <= g.start and g.stop <= hi for g in groups)
            if level > 0:
                # The level's groups tile its row range exactly.
                covered = sorted((g.start, g.stop) for g in groups)
                assert covered[0][0] == lo and covered[-1][1] == hi
                assert all(
                    a_stop == b_start
                    for (_, a_stop), (b_start, _) in zip(covered, covered[1:])
                )

    def test_level_groups_range_checked(self, cholesky4):
        from repro.core.kernels import schedule_for
        from repro.exceptions import GraphError

        schedule = schedule_for(cholesky4.index(), "up")
        with pytest.raises(GraphError):
            schedule.level_groups(schedule.num_levels)
        with pytest.raises(GraphError):
            schedule.level_groups(-1)

    def test_level_partitions_tile_each_group(self, cholesky4):
        from repro.core.kernels import schedule_for
        from repro.exceptions import GraphError

        schedule = schedule_for(cholesky4.index(), "up")
        for level in range(1, schedule.num_levels):
            for target in (1, 2, 1_000_000):
                parts = schedule.level_partitions(level, target)
                by_group = {}
                for group, lo, hi in parts:
                    assert 0 <= lo < hi <= group.stop - group.start
                    assert hi - lo <= target
                    by_group.setdefault(id(group), []).append((lo, hi))
                for group in schedule.level_groups(level):
                    spans = sorted(by_group[id(group)])
                    assert spans[0][0] == 0
                    assert spans[-1][1] == group.stop - group.start
                    assert all(
                        a == b for (_, a), (b, _) in zip(spans, spans[1:])
                    )
        with pytest.raises(GraphError):
            schedule.level_partitions(1, 0)
