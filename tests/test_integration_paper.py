"""Integration tests reproducing the paper's qualitative claims end to end.

These tests run the real pipeline (factorization DAG -> calibrated error
model -> estimators -> Monte Carlo reference) at reduced scale and assert
the *shape* of the paper's results:

* First Order is far more accurate than Dodin and Normal at low p_fail
  (Figures 5, 6, 8, 9, 11, 12);
* at p_fail = 0.01 First Order and Normal are comparable (Figures 4, 7, 10);
* Dodin gives the largest errors on these highly non-series-parallel DAGs;
* First Order is the fastest of the three approximations (Table I);
* the public `estimate_expected_makespan` API ties everything together.
"""

import pytest

import repro
from repro.estimators.registry import get_estimator
from repro.experiments.config import FigureConfig
from repro.experiments.error_vs_size import run_error_vs_size
from repro.failures.models import ExponentialErrorModel

MC_TRIALS = 60_000
SEED = 123


def _errors(workflow: str, k: int, pfail: float):
    """Relative errors of the three approximations against Monte Carlo."""
    graph = repro.build_dag(workflow, k)
    model = ExponentialErrorModel.for_graph(graph, pfail)
    reference = get_estimator("monte-carlo", trials=MC_TRIALS, seed=SEED).estimate(
        graph, model
    )
    out = {}
    for name in ("first-order", "normal", "dodin"):
        estimate = get_estimator(name).estimate(graph, model)
        out[name] = (
            abs(estimate.expected_makespan - reference.expected_makespan)
            / reference.expected_makespan,
            estimate.wall_time,
        )
    out["_mc_stderr"] = (reference.std_error or 0.0) / reference.expected_makespan
    return out


class TestAccuracyOrdering:
    @pytest.mark.parametrize("workflow", ["cholesky", "lu", "qr"])
    def test_low_pfail_first_order_wins_by_an_order_of_magnitude(self, workflow):
        """At p_fail = 1e-3 the paper reports First Order errors at least one
        order of magnitude below the competitors (Figures 5, 8, 11)."""
        errors = _errors(workflow, 8, 1e-3)
        first = errors["first-order"][0]
        normal = errors["normal"][0]
        dodin = errors["dodin"][0]
        noise = errors["_mc_stderr"]
        assert first < 10 * noise + 1e-3  # essentially at the MC noise floor
        assert normal > first
        assert dodin > first
        assert dodin > 5 * first

    @pytest.mark.parametrize("workflow", ["cholesky", "lu"])
    def test_dodin_worst_across_the_board(self, workflow):
        """Section V-F: Dodin leads to the highest errors because the
        factorization DAGs are far from series-parallel."""
        errors = _errors(workflow, 8, 1e-2)
        assert errors["dodin"][0] >= errors["normal"][0]
        assert errors["dodin"][0] >= errors["first-order"][0]

    def test_high_pfail_first_order_comparable_to_normal(self):
        """At p_fail = 0.01 First Order and Normal are of the same order of
        magnitude (Figures 4, 7, 10)."""
        errors = _errors("qr", 8, 1e-2)
        first = errors["first-order"][0]
        normal = errors["normal"][0]
        assert first < 10 * normal + 1e-6
        assert first < 0.05  # a few percent at most

    def test_error_decreases_with_pfail(self):
        """First Order's error shrinks roughly linearly with p_fail."""
        coarse = _errors("cholesky", 8, 1e-2)["first-order"][0]
        fine = _errors("cholesky", 8, 1e-3)["first-order"][0]
        assert fine < coarse


class TestSpeedOrdering:
    def test_first_order_fastest_approximation(self):
        """Table I: First Order runs in negligible time compared to Dodin."""
        graph = repro.lu_dag(10)
        model = ExponentialErrorModel.for_graph(graph, 1e-4)
        first = get_estimator("first-order").estimate(graph, model)
        dodin = get_estimator("dodin").estimate(graph, model)
        assert first.wall_time < dodin.wall_time
        # And it is far below a second even on this 385-task graph.
        assert first.wall_time < 1.0


class TestPublicApi:
    def test_estimate_expected_makespan_accepts_pfail_float(self):
        graph = repro.cholesky_dag(6)
        result = repro.estimate_expected_makespan(graph, 0.001, method="first-order")
        assert result.method == "first-order"
        assert result.expected_makespan > result.failure_free_makespan

    def test_estimate_expected_makespan_accepts_model(self):
        graph = repro.cholesky_dag(4)
        model = repro.ExponentialErrorModel.for_graph(graph, 0.01)
        a = repro.estimate_expected_makespan(graph, model, method="normal")
        b = repro.estimate_expected_makespan(graph, 0.01, method="normal")
        assert a.expected_makespan == pytest.approx(b.expected_makespan)

    def test_estimator_kwargs_forwarded(self):
        graph = repro.lu_dag(4)
        result = repro.estimate_expected_makespan(
            graph, 0.01, method="monte-carlo", trials=3_000, seed=9
        )
        assert result.details["trials"] == 3_000

    def test_version_and_exports(self):
        assert repro.__version__
        assert "first-order" in repro.available_estimators()


class TestExperimentPipeline:
    def test_mini_figure_reproduces_winner(self):
        """A miniature Figure 5 (Cholesky, p_fail = 1e-3) must crown First
        Order at every size."""
        config = FigureConfig(
            figure="mini-figure5",
            workflow="cholesky",
            pfail=1e-3,
            sizes=(4, 6),
            estimators=("dodin", "normal", "first-order"),
        )
        result = run_error_vs_size(config, mc_trials=40_000, seed=7)
        winners = result.winner_per_size()
        assert set(winners.values()) == {"first-order"}
