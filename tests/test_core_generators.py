"""Unit tests for repro.core.generators (random/structured DAG families)."""

import numpy as np
import pytest

from repro.core.generators import (
    chain_graph,
    diamond_mesh,
    erdos_renyi_dag,
    fork_join,
    independent_tasks,
    layered_random_dag,
    random_out_tree,
    random_series_parallel,
    random_weights,
)
from repro.core.paths import critical_path_length
from repro.core.seriesparallel import is_series_parallel
from repro.core.validation import ensure_valid
from repro.exceptions import GraphError


class TestRandomWeights:
    def test_range_and_size(self):
        w = random_weights(1000, low=0.1, high=0.2, rng=0)
        assert w.shape == (1000,)
        assert np.all((w >= 0.1) & (w < 0.2))

    def test_reproducible(self):
        assert np.allclose(random_weights(10, rng=5), random_weights(10, rng=5))

    def test_invalid_range(self):
        with pytest.raises(GraphError):
            random_weights(5, low=0.5, high=0.1)


class TestStructuredGenerators:
    def test_chain(self):
        g = chain_graph(5, weight=1.0)
        assert g.num_tasks == 5 and g.num_edges == 4
        assert critical_path_length(g) == pytest.approx(5.0)

    def test_chain_needs_positive_length(self):
        with pytest.raises(GraphError):
            chain_graph(0)

    def test_independent(self):
        g = independent_tasks(7, weight=2.0)
        assert g.num_edges == 0
        assert critical_path_length(g) == pytest.approx(2.0)

    def test_fork_join_structure(self):
        g = fork_join(4, stages=2, weight=1.0)
        assert g.num_tasks == 2 * 5 + 1
        # critical path: fork + work + join + work + join = 5 tasks of weight 1
        assert critical_path_length(g) == pytest.approx(5.0)
        assert len(g.sources()) == 1 and len(g.sinks()) == 1

    def test_diamond_mesh_counts(self):
        g = diamond_mesh(3, 4, weight=1.0)
        assert g.num_tasks == 12
        # longest path in a grid = depth + width - 1 tasks
        assert critical_path_length(g) == pytest.approx(6.0)
        assert not is_series_parallel(g)


class TestRandomGenerators:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_layered_dag_is_valid(self, seed):
        g = layered_random_dag(5, 4, rng=seed)
        ensure_valid(g)
        assert g.num_tasks == 20
        # every non-first-layer task has at least one predecessor
        for tid in g.task_ids():
            if not tid.startswith("L0_"):
                assert g.in_degree(tid) >= 1

    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_erdos_renyi_is_acyclic(self, seed):
        g = erdos_renyi_dag(30, 0.2, rng=seed)
        assert g.is_acyclic()
        assert g.num_tasks == 30

    def test_erdos_renyi_edge_probability_extremes(self):
        empty = erdos_renyi_dag(10, 0.0, rng=0)
        assert empty.num_edges == 0
        full = erdos_renyi_dag(10, 1.0, rng=0)
        assert full.num_edges == 45

    def test_out_tree_in_degrees(self):
        g = random_out_tree(25, max_children=3, rng=4)
        assert g.num_tasks == 25
        roots = [t for t in g.task_ids() if g.in_degree(t) == 0]
        assert roots == ["t0"]
        assert all(g.in_degree(t) == 1 for t in g.task_ids() if t != "t0")
        assert all(g.out_degree(t) <= 3 for t in g.task_ids())
        assert is_series_parallel(g)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_sp_has_requested_leaves(self, seed):
        g = random_series_parallel(15, rng=seed)
        assert g.num_tasks == 15
        assert g.is_acyclic()

    def test_generators_reproducible_with_seed(self):
        a = erdos_renyi_dag(20, 0.3, rng=99)
        b = erdos_renyi_dag(20, 0.3, rng=99)
        assert a.edges() == b.edges()
        assert a.weights() == pytest.approx(b.weights())

    def test_parameter_validation(self):
        with pytest.raises(GraphError):
            layered_random_dag(0, 3)
        with pytest.raises(GraphError):
            erdos_renyi_dag(5, 1.5)
        with pytest.raises(GraphError):
            fork_join(0)
        with pytest.raises(GraphError):
            random_out_tree(5, max_children=0)

    def test_explicit_weight_sequence(self):
        g = chain_graph(3, weight=[1.0, 2.0, 3.0])
        assert g.weight("t1") == 2.0
        with pytest.raises(GraphError):
            chain_graph(3, weight=[1.0])
