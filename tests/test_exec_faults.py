"""Chaos tests of the execution service's fault-tolerance layer.

The central property (mirroring the determinism contract of
``tests/test_exec_service.py``): for *any* injected fault plan below the
retry budget, every backend folds a result **bit-identical** to the
fault-free run — including identical early-stop prefixes — because a
retried partition replays its index-keyed RNG stream.  On top of that:
structured :class:`~repro.exceptions.ExecutionError` on exhausted budgets,
worker-kill recovery through pool rebuilds, preemptive deadlines on the
``processes`` backend, opt-in backend degradation, and a clean
shared-memory lifecycle when workers die mid-run.
"""

import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import (
    EstimationError,
    ExecutionError,
    ExecutionTimeoutError,
    ReproError,
)
from repro.exec import (
    ExecutionPolicy,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    ParallelService,
    RandomFaults,
)


def _processes_available() -> bool:
    try:
        with ProcessPoolExecutor(
            max_workers=1, mp_context=multiprocessing.get_context()
        ) as pool:
            return pool.submit(int, 1).result(timeout=60) == 1
    except Exception:
        return False


HAS_PROCESSES = _processes_available()


def _transform(item, slot, rng):
    """A deterministic partition function exercising the rng stream."""
    size = int(item) % 7 + 1
    base = np.full(size, float(item))
    if rng is not None:
        base = base + rng.standard_normal(size)
    return float(base.sum())


def _service(**kwargs):
    """A service with fault-plan/backoff defaults suited to fast tests."""
    kwargs.setdefault("backoff", 0.0)
    kwargs.setdefault("faults", None)
    return ParallelService(**kwargs)


# ----------------------------------------------------------------------
# Fault-plan grammar and semantics
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_parse_spec_entries(self):
        plan = FaultPlan.parse("raise@3; hang@2:0.25; kill@5#1; raise@0#2")
        assert plan.lookup(3, 0) == FaultSpec("raise", 3)
        assert plan.lookup(2, 0).duration == 0.25
        assert plan.lookup(5, 1).kind == "kill"
        assert plan.lookup(0, 2).kind == "raise"
        assert plan.lookup(3, 1) is None
        assert plan.lookup(7, 0) is None

    def test_parse_random_entry(self):
        plan = FaultPlan.parse("random(p=0.5, seed=42, kinds=raise+kill)")
        assert plan.random == RandomFaults(0.5, seed=42, kinds=("raise", "kill"))
        # Decisions are per-partition deterministic and attempt-0 only.
        first = [plan.lookup(i, 0) for i in range(64)]
        again = [plan.lookup(i, 0) for i in range(64)]
        assert first == again
        assert any(spec is not None for spec in first)
        assert all(plan.lookup(i, 1) is None for i in range(64))

    def test_parse_rejects_malformed(self):
        for text in ("explode@1", "raise", "raise@x", "random(p=2)",
                     "random(p=0.1,unknown=3)", "raise@1#z",
                     "random(p=0.1);random(p=0.2)"):
            with pytest.raises(EstimationError):
                FaultPlan.parse(text)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXEC_FAULTS", raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv("REPRO_EXEC_FAULTS", "raise@1")
        assert FaultPlan.from_env() == FaultPlan.parse("raise@1")

    def test_plan_pickles(self):
        plan = FaultPlan.parse("kill@2; random(p=0.1, seed=7)")
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_apply_raise_and_kill_downgrade_in_process(self):
        plan = FaultPlan.parse("raise@0; kill@1")
        with pytest.raises(InjectedFault):
            plan.apply(0, 0, in_child=False)
        # In-process backends cannot kill the interpreter: kill -> raise.
        with pytest.raises(InjectedFault):
            plan.apply(1, 0, in_child=False)
        plan.apply(2, 0, in_child=False)  # no fault scheduled: no-op

    def test_injected_faults_are_not_repro_errors(self):
        # They model *external* worker failures, so catch-all ReproError
        # handlers must not swallow them before the retry layer does.
        assert not issubclass(InjectedFault, ReproError)


class TestExecutionPolicy:
    def test_env_resolution_and_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_RETRIES", "3")
        monkeypatch.setenv("REPRO_EXEC_TIMEOUT", "1.5")
        monkeypatch.setenv("REPRO_EXEC_ON_FAILURE", "degrade")
        monkeypatch.setenv("REPRO_EXEC_BACKOFF", "0")
        policy = ExecutionPolicy.resolve()
        assert policy == ExecutionPolicy(3, 1.5, "degrade", 0.0)
        # Explicit arguments win over the environment.
        explicit = ExecutionPolicy.resolve(retries=1, on_failure="raise")
        assert explicit.retries == 1 and explicit.on_failure == "raise"
        assert explicit.timeout == 1.5  # unset knob still env-filled

    def test_validation(self):
        with pytest.raises(EstimationError):
            ExecutionPolicy(retries=-1)
        with pytest.raises(EstimationError):
            ExecutionPolicy(timeout=0.0)
        with pytest.raises(EstimationError):
            ExecutionPolicy(on_failure="panic")

    def test_backoff_jitter_is_deterministic(self):
        policy = ExecutionPolicy(retries=3, backoff=0.1)
        a = policy.backoff_delay(42, 5, 2)
        b = policy.backoff_delay(42, 5, 2)
        assert a == b and 0.1 <= a <= 0.2
        assert policy.backoff_delay(42, 5, 0) == 0.0
        assert ExecutionPolicy(backoff=0.0).backoff_delay(42, 5, 2) == 0.0


# ----------------------------------------------------------------------
# Retry determinism (the tentpole property)
# ----------------------------------------------------------------------
faulted_attempts = st.dictionaries(
    st.integers(0, 29), st.integers(1, 2), max_size=6
)


class TestRetryDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(
        items=st.lists(st.integers(0, 1000), min_size=1, max_size=30),
        workers=st.integers(1, 4),
        entropy=st.integers(0, 2**16),
        faulted=faulted_attempts,
    )
    def test_faulty_run_bit_identical_to_fault_free(
        self, items, workers, entropy, faulted
    ):
        # Partition p fails on attempts 0..f-1 and succeeds on attempt f;
        # the retry budget covers the deepest failure chain.
        specs = [
            FaultSpec("raise", p, attempt=a)
            for p, f in faulted.items()
            for a in range(f)
        ]
        plan = FaultPlan(specs)
        retries = max(faulted.values(), default=0)
        backend = "serial" if workers == 1 else "threads"
        clean = _service(workers=workers, backend=backend).run(
            _transform, items, entropy=entropy
        )
        chaotic = _service(
            workers=workers, backend=backend, retries=retries, faults=plan
        ).run(_transform, items, entropy=entropy)
        assert chaotic == clean

    @settings(max_examples=15, deadline=None)
    @given(
        items=st.lists(st.integers(0, 1000), min_size=1, max_size=30),
        workers=st.integers(1, 4),
        threshold=st.integers(0, 1000),
        faulted=faulted_attempts,
    )
    def test_early_stop_prefix_identical_under_faults(
        self, items, workers, threshold, faulted
    ):
        plan = FaultPlan(
            [
                FaultSpec("raise", p, attempt=a)
                for p, f in faulted.items()
                for a in range(f)
            ]
        )
        retries = max(faulted.values(), default=0)
        backend = "serial" if workers == 1 else "threads"

        def run(faults, budget):
            folded = []

            def consume(index, result):
                folded.append((index, result))
                return items[index] >= threshold

            _service(
                workers=workers, backend=backend, retries=budget, faults=faults
            ).run(_transform, items, entropy=11, consume=consume)
            return folded

        clean, chaotic = run(None, 0), run(plan, retries)
        assert chaotic == clean
        indices = [i for i, _ in clean]
        assert indices == list(range(len(indices)))

    def test_serial_slot_stream_replays_on_retry(self):
        # The MC serial backend's slot owns one *sequential* stream; the
        # client snapshots/restores it so retries replay their draws.
        from repro.failures.models import ExponentialErrorModel
        from repro.sim.engine import MonteCarloEngine
        from repro.workflows.registry import build_dag

        graph = build_dag("cholesky", 4)
        model = ExponentialErrorModel.for_graph(graph, 1e-2)

        def run(env):
            # Start from a fault-free environment (the chaos CI job exports
            # a global REPRO_EXEC_FAULTS plan) so the clean reference really
            # is clean, then apply this run's own plan.
            keys = ("REPRO_EXEC_FAULTS", "REPRO_EXEC_BACKOFF")
            saved = {key: os.environ.pop(key, None) for key in keys}
            for key, value in env.items():
                os.environ[key] = value
            try:
                return MonteCarloEngine(
                    graph, model, trials=4_000, batch_size=512, seed=9,
                    exec_retries=2,
                ).run()
            finally:
                for key in env:
                    os.environ.pop(key, None)
                for key, value in saved.items():
                    if value is not None:
                        os.environ[key] = value

        clean = run({})
        chaotic = run({"REPRO_EXEC_FAULTS": "raise@1; raise@3#0; raise@3#1",
                       "REPRO_EXEC_BACKOFF": "0"})
        assert chaotic.mean == clean.mean
        assert chaotic.std == clean.std
        assert chaotic.execution["retries"] == 3
        assert chaotic.execution["faults_injected"] == 3
        assert clean.execution["clean"]

    def test_report_accounts_attempts_and_retries(self):
        service = _service(
            workers=2, backend="threads", retries=1,
            faults=FaultPlan.parse("raise@0; raise@2"),
        )
        assert service.run(_transform, [1, 2, 3, 4], entropy=5) is not None
        report = service.report
        assert report.partitions == 4
        assert report.attempts == 6
        assert report.retries == 2
        assert report.failure_count == 2
        assert report.faults_injected == 2
        assert not report.clean
        assert {f.partition for f in report.failures} == {0, 2}
        assert "2 retries" in report.summary()

    def test_env_fault_plan_feeds_service_unless_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_FAULTS", "raise@0")
        monkeypatch.setenv("REPRO_EXEC_RETRIES", "1")
        monkeypatch.setenv("REPRO_EXEC_BACKOFF", "0")
        implicit = ParallelService(workers=1)
        assert implicit.faults == FaultPlan.parse("raise@0")
        assert implicit.run(_transform, [5, 6]) == _service(workers=1).run(
            _transform, [5, 6]
        )
        assert implicit.report.faults_injected == 1
        # Explicit faults=None opts out regardless of the environment.
        disabled = ParallelService(workers=1, faults=None)
        disabled.run(_transform, [5, 6])
        assert disabled.report.clean


# ----------------------------------------------------------------------
# Structured errors
# ----------------------------------------------------------------------
class TestStructuredErrors:
    @pytest.mark.parametrize("backend,workers", [("serial", 1), ("threads", 3)])
    def test_exhausted_retries_raise_execution_error(self, backend, workers):
        plan = FaultPlan([FaultSpec("raise", 2, attempt=a) for a in range(3)])
        service = _service(
            workers=workers, backend=backend, retries=2, faults=plan
        )
        with pytest.raises(ExecutionError) as excinfo:
            service.run(_transform, [1, 2, 3, 4], entropy=0)
        err = excinfo.value
        assert err.partition == 2
        assert err.attempts == 3
        assert len(err.causes) == 3
        assert "injected raise fault" in err.causes[0]
        assert isinstance(err, EstimationError)  # under ReproError
        assert service.report.quarantined == [2]

    def test_failure_past_early_stop_cannot_fail_the_run(self):
        # Partition 3 always fails, but the fold stops at partition 1.
        plan = FaultPlan([FaultSpec("raise", 3, attempt=a) for a in range(5)])
        for workers in (1, 4):
            backend = "serial" if workers == 1 else "threads"
            folded = []
            _service(workers=workers, backend=backend, faults=plan).run(
                _transform,
                [1, 2, 3, 4, 5],
                entropy=3,
                consume=lambda i, r: folded.append(i) or i >= 1,
            )
            assert folded == [0, 1]

    def test_consumer_exceptions_propagate_unwrapped(self):
        class Sentinel(Exception):
            pass

        def consume(index, result):
            raise Sentinel

        for workers in (1, 3):
            backend = "serial" if workers == 1 else "threads"
            with pytest.raises(Sentinel):
                _service(workers=workers, backend=backend, retries=5).run(
                    _transform, [1, 2, 3], entropy=0, consume=consume
                )

    def test_in_process_soft_deadline_is_advisory(self):
        # A hang past the deadline on threads is recorded, not discarded.
        plan = FaultPlan.parse("hang@1:0.05")
        service = _service(
            workers=2, backend="threads", timeout=0.01, faults=plan
        )
        clean = _service(workers=2, backend="threads").run(
            _transform, [7, 8, 9], entropy=1
        )
        assert service.run(_transform, [7, 8, 9], entropy=1) == clean
        assert service.report.deadline_misses >= 1
        assert service.report.timeouts == 0


# ----------------------------------------------------------------------
# Backend degradation
# ----------------------------------------------------------------------
class _BrokenPool:
    def __init__(self, *args, **kwargs):
        raise OSError("injected: cannot fork")


class TestDegradation:
    def test_processes_degrade_to_threads(self, monkeypatch):
        import repro.exec.service as service_module

        monkeypatch.setattr(service_module, "ProcessPoolExecutor", _BrokenPool)
        clean = _service(workers=2, backend="threads").run(
            _transform, [1, 2, 3], entropy=4
        )
        service = _service(workers=2, backend="processes", on_failure="degrade")
        assert service.run(_transform, [1, 2, 3], entropy=4) == clean
        report = service.report
        assert [d.as_dict()["to"] for d in report.degradations] == ["threads"]
        assert report.effective_backend == "threads"
        assert report.backend == "processes"

    def test_degradation_is_opt_in(self, monkeypatch):
        import repro.exec.service as service_module

        monkeypatch.setattr(service_module, "ProcessPoolExecutor", _BrokenPool)
        service = _service(workers=2, backend="processes")  # on_failure="raise"
        with pytest.raises(ExecutionError) as excinfo:
            service.run(_transform, [1, 2, 3], entropy=4)
        assert "unusable" in str(excinfo.value)
        assert excinfo.value.partition is None

    def test_threads_degrade_to_serial(self, monkeypatch):
        def broken_pool(self):
            raise RuntimeError("injected: no threads")

        monkeypatch.setattr(ParallelService, "_pool", broken_pool)
        clean = _service(workers=1).run(_transform, [4, 5, 6], entropy=2)
        service = _service(workers=3, backend="threads", on_failure="degrade")
        assert service.run(_transform, [4, 5, 6], entropy=2) == clean
        assert service.report.effective_backend == "serial"


# ----------------------------------------------------------------------
# Process backend: kills, preemption, shared-memory lifecycle
# ----------------------------------------------------------------------
def _leaked_shm_segments():
    """The ``/dev/shm`` segments nothing accounts for.

    Segments held warm by the content-addressed registry are *owned*, not
    leaked: the registry refcounts them and unlinks everything on clear()
    / interpreter exit, so they are excluded from the leak census.
    """
    from repro.exec.shm import REGISTRY

    base = "/dev/shm"
    if not os.path.isdir(base):  # pragma: no cover - non-POSIX fallback
        return set()
    owned = {seg.name for seg in REGISTRY._segments.values()}
    return {
        name
        for name in os.listdir(base)
        if name.startswith("psm_") and name not in owned
    }


@pytest.mark.skipif(not HAS_PROCESSES, reason="process pools unavailable")
class TestProcessChaos:
    def test_worker_kill_recovered_bit_identical(self):
        items = [3, 1, 4, 1, 5, 9, 2, 6]
        clean = _service(workers=2, backend="processes").run(
            _transform, items, entropy=8
        )
        service = _service(
            workers=2, backend="processes", retries=2,
            faults=FaultPlan.parse("kill@3"),
        )
        assert service.run(_transform, items, entropy=8) == clean
        assert service.report.pool_rebuilds >= 1
        assert any(f.kind == "worker-lost" for f in service.report.failures)

    def test_random_plan_matches_threads(self):
        items = [int(v) for v in np.random.default_rng(5).integers(0, 999, 16)]
        plan = FaultPlan.parse("random(p=0.3, seed=12)")
        threads = _service(
            workers=3, backend="threads", retries=1, faults=plan
        ).run(_transform, items, entropy=5)
        processes = _service(
            workers=3, backend="processes", retries=1, faults=plan
        ).run(_transform, items, entropy=5)
        clean = _service(workers=1).run(_transform, items, entropy=5)
        assert processes == threads == clean

    def test_hung_worker_preempted_and_retried(self):
        items = [1, 2, 3]
        clean = _service(workers=2, backend="processes").run(
            _transform, items, entropy=6
        )
        service = _service(
            workers=2, backend="processes", retries=1, timeout=0.25,
            faults=FaultPlan.parse("hang@0:30"),
        )
        assert service.run(_transform, items, entropy=6) == clean
        assert service.report.timeouts >= 1
        assert service.report.pool_rebuilds >= 1

    def test_hang_past_budget_raises_timeout_error(self):
        service = _service(
            workers=2, backend="processes", timeout=0.25,
            faults=FaultPlan(
                [FaultSpec("hang", 0, attempt=a, duration=30) for a in range(4)]
            ),
        )
        with pytest.raises(ExecutionTimeoutError) as excinfo:
            service.run(_transform, [1, 2], entropy=0)
        assert excinfo.value.partition == 0
        assert "deadline" in excinfo.value.causes[0]

    def test_mc_worker_kill_leaves_no_shm_leak(self, monkeypatch):
        # Satellite: kill a worker mid-run; the engine's result buffer must
        # be unlinked and the resource tracker left clean.
        from repro.failures.models import ExponentialErrorModel
        from repro.sim.engine import MonteCarloEngine
        from repro.workflows.registry import build_dag

        graph = build_dag("cholesky", 4)
        model = ExponentialErrorModel.for_graph(graph, 1e-2)

        def run():
            return MonteCarloEngine(
                graph, model, trials=4_000, batch_size=512, seed=13,
                workers=2, backend="processes", exec_retries=2,
            ).run()

        before = _leaked_shm_segments()
        clean = run()
        monkeypatch.setenv("REPRO_EXEC_FAULTS", "kill@2")
        monkeypatch.setenv("REPRO_EXEC_BACKOFF", "0")
        chaotic = run()
        after = _leaked_shm_segments()
        assert after <= before  # no new segments survived either run
        assert chaotic.mean == clean.mean and chaotic.std == clean.std
        assert chaotic.execution["pool_rebuilds"] >= 1
        assert not chaotic.execution["clean"]

    def test_shm_fold_bit_identical_under_faults_any_worker_count(self):
        # Hypothesis property over the shared-memory kernel plane: the
        # correlated per-level fold on the ``processes`` backend — workers
        # attached zero-copy to the estimate's segments — replays faulted
        # partitions bit-identically to the serial and threads references,
        # at any worker count, for raise *and* kill (pool-rebuild) plans.
        from repro.estimators.correlated import CorrelatedNormalEstimator
        from repro.failures.models import ExponentialErrorModel
        from repro.workflows.registry import build_dag

        graph = build_dag("cholesky", 5)
        model = ExponentialErrorModel.for_graph(graph, 1e-3)

        def estimate(env, **kwargs):
            keys = ("REPRO_EXEC_FAULTS", "REPRO_EXEC_BACKOFF")
            saved = {key: os.environ.pop(key, None) for key in keys}
            os.environ["REPRO_EXEC_BACKOFF"] = "0"
            for key, value in env.items():
                os.environ[key] = value
            try:
                result = CorrelatedNormalEstimator(**kwargs).estimate(
                    graph, model
                )
                return (
                    result.expected_makespan,
                    result.details["makespan_variance"],
                )
            finally:
                for key in keys:
                    os.environ.pop(key, None)
                for key, value in saved.items():
                    if value is not None:
                        os.environ[key] = value

        reference = estimate({}, workers=1)
        assert estimate({}, workers=3, exec_backend="threads") == reference

        @settings(max_examples=5, deadline=None)
        @given(
            workers=st.integers(1, 3),
            plan=st.sampled_from(
                ["raise@0", "raise@1#0; raise@1#1", "kill@0",
                 "kill@2; raise@0"]
            ),
        )
        def property_holds(workers, plan):
            chaotic = estimate(
                {"REPRO_EXEC_FAULTS": plan},
                workers=workers,
                exec_backend="processes",
                exec_retries=2,
            )
            assert chaotic == reference

        property_holds()

    def test_shm_degrade_to_threads_bit_identical_and_leak_free(
        self, monkeypatch
    ):
        # A dead process backend degrades to threads *within the run*: the
        # parent builds slots through the same spec (attaching its own
        # segments by name), folds bit-identically, and the teardown path
        # still leaves /dev/shm clean.
        import repro.exec.service as service_module
        from repro.estimators.correlated import CorrelatedNormalEstimator
        from repro.failures.models import ExponentialErrorModel
        from repro.workflows.registry import build_dag

        graph = build_dag("lu", 5)
        model = ExponentialErrorModel.for_graph(graph, 1e-3)

        def estimate(**kwargs):
            result = CorrelatedNormalEstimator(
                workers=2, **kwargs
            ).estimate(graph, model)
            return (
                result.expected_makespan,
                result.details["makespan_variance"],
            )

        threads = estimate(exec_backend="threads")
        before = _leaked_shm_segments()
        monkeypatch.setattr(service_module, "ProcessPoolExecutor", _BrokenPool)
        degraded = estimate(
            exec_backend="processes", exec_on_failure="degrade"
        )
        assert degraded == threads
        assert _leaked_shm_segments() <= before

    def test_shm_pool_rebuilds_leave_no_leak(self, monkeypatch):
        # Regression: killed workers force pool rebuilds mid-estimate; the
        # segments published for that estimate must all be reclaimed (the
        # registry's warm schedule segment stays owned, not leaked).
        from repro.estimators.correlated import CorrelatedNormalEstimator
        from repro.estimators.second_order import SecondOrderEstimator
        from repro.failures.models import ExponentialErrorModel
        from repro.workflows.registry import build_dag

        graph = build_dag("cholesky", 5)
        model = ExponentialErrorModel.for_graph(graph, 1e-2)
        monkeypatch.setenv("REPRO_EXEC_FAULTS", "kill@0")
        monkeypatch.setenv("REPRO_EXEC_BACKOFF", "0")
        before = _leaked_shm_segments()

        correlated = CorrelatedNormalEstimator(
            workers=2, exec_backend="processes", exec_retries=2
        ).estimate(graph, model)
        second = SecondOrderEstimator(
            workers=2, exec_backend="processes", exec_retries=2
        ).estimate(graph, model)

        assert _leaked_shm_segments() <= before
        assert correlated.details["execution"]["pool_rebuilds"] >= 1
        monkeypatch.delenv("REPRO_EXEC_FAULTS")
        clean = SecondOrderEstimator(
            workers=2, exec_backend="processes"
        ).estimate(graph, model)
        assert second.expected_makespan == clean.expected_makespan

    def test_mc_degrades_processes_to_threads_bit_identical(self, monkeypatch):
        # End to end through the engine: a dead process backend falls back
        # to threads, and per-batch streams keep the result bit-identical.
        from repro.failures.models import ExponentialErrorModel
        from repro.sim.engine import MonteCarloEngine
        from repro.workflows.registry import build_dag

        graph = build_dag("lu", 4)
        model = ExponentialErrorModel.for_graph(graph, 1e-3)

        def engine(backend):
            return MonteCarloEngine(
                graph, model, trials=3_000, batch_size=512, seed=21,
                workers=2, backend=backend, exec_on_failure="degrade",
            )

        threads = engine("threads").run()
        import repro.exec.service as service_module

        monkeypatch.setattr(service_module, "ProcessPoolExecutor", _BrokenPool)
        degraded = engine("processes").run()
        assert degraded.mean == threads.mean
        assert degraded.execution["effective_backend"] == "threads"
        assert degraded.execution["degradations"]
