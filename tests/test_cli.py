"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core.serialize import load_json


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_estimate_defaults(self):
        args = build_parser().parse_args(
            ["estimate", "--workflow", "lu", "--size", "6"]
        )
        assert args.pfail == pytest.approx(1e-3)
        assert args.method is None


class TestGenerate:
    def test_json_output(self, tmp_path, capsys):
        out = tmp_path / "chol.json"
        code = main(
            ["generate", "--workflow", "cholesky", "--size", "4", "--output", str(out)]
        )
        assert code == 0
        graph = load_json(out)
        assert graph.num_tasks == 20
        assert "20 tasks" in capsys.readouterr().out

    def test_dot_output(self, tmp_path):
        out = tmp_path / "lu.dot"
        code = main(
            [
                "generate",
                "--workflow",
                "lu",
                "--size",
                "3",
                "--format",
                "dot",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        assert out.read_text().startswith("digraph")


class TestEstimate:
    def test_text_output(self, capsys):
        code = main(
            [
                "estimate",
                "--workflow",
                "cholesky",
                "--size",
                "4",
                "--pfail",
                "0.01",
                "--method",
                "first-order",
                "--method",
                "normal",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "first-order" in out and "normal" in out

    def test_json_output_with_monte_carlo(self, capsys):
        code = main(
            [
                "estimate",
                "--workflow",
                "lu",
                "--size",
                "4",
                "--pfail",
                "0.01",
                "--method",
                "first-order",
                "--method",
                "monte-carlo",
                "--trials",
                "2000",
                "--seed",
                "7",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_tasks"] == 30
        methods = {e["method"] for e in payload["estimates"]}
        assert methods == {"first-order", "monte-carlo"}
        for entry in payload["estimates"]:
            assert entry["expected_makespan"] >= entry["failure_free_makespan"]


class TestExperimentAndSchedule:
    def test_table1_small(self, capsys):
        code = main(
            ["experiment", "table1", "--size", "4", "--trials", "2000", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "first-order" in out

    def test_figure_small(self, capsys, monkeypatch):
        # Shrink figure4 so the CLI run stays fast.
        from repro.experiments.config import FigureConfig
        from repro.experiments import config as config_module

        small = FigureConfig(
            figure="figure4",
            workflow="cholesky",
            pfail=1e-2,
            sizes=(2, 3),
            estimators=("first-order", "normal"),
        )

        monkeypatch.setitem(config_module.PAPER_FIGURES, "figure4", small)
        code = main(
            ["experiment", "figure", "--figure", "figure4", "--trials", "1500", "--no-plot"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "figure4" in out

    def test_schedule_command(self, capsys):
        code = main(
            [
                "schedule",
                "--workflow",
                "cholesky",
                "--size",
                "4",
                "--processors",
                "3",
                "--pfail",
                "0.05",
                "--priority",
                "expected-first-order",
                "--trials",
                "100",
                "--seed",
                "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "expected makespan under failures" in out
        assert "utilisation" in out
