"""Unit tests for repro.core.seriesparallel (recognition, decomposition, evaluation)."""

import pytest

from repro.core.generators import chain_graph, fork_join, random_series_parallel
from repro.core.graph import TaskGraph
from repro.core.paths import critical_path_length
from repro.core.seriesparallel import (
    SPLeaf,
    SPParallel,
    SPSeries,
    evaluate_sp,
    is_series_parallel,
    make_series_parallel_graph,
    sp_decomposition,
    sp_leaf_tasks,
)
from repro.exceptions import NotSeriesParallelError


class TestRecognition:
    def test_chain_is_sp(self, chain3):
        assert is_series_parallel(chain3)

    def test_diamond_is_sp(self, diamond):
        assert is_series_parallel(diamond)

    def test_fork_join_is_sp(self):
        assert is_series_parallel(fork_join(5, stages=3, weight=1.0))

    def test_random_sp_graphs_are_sp(self):
        for seed in range(5):
            g = random_series_parallel(12, rng=seed)
            assert is_series_parallel(g), f"seed {seed}"

    def test_n_graph_is_not_sp(self, non_sp_graph):
        assert not is_series_parallel(non_sp_graph)
        with pytest.raises(NotSeriesParallelError):
            sp_decomposition(non_sp_graph)

    def test_factorization_dags_are_not_sp(self, cholesky4, lu4, qr4):
        # Section V-F of the paper: "the DAGs that we consider are far from
        # being series-parallel".
        assert not is_series_parallel(cholesky4)
        assert not is_series_parallel(lu4)
        assert not is_series_parallel(qr4)

    def test_independent_tasks_are_sp(self):
        g = TaskGraph()
        g.add_task("a", 1.0)
        g.add_task("b", 2.0)
        assert is_series_parallel(g)


class TestDecompositionEvaluation:
    def test_leaves_cover_all_tasks(self, diamond):
        tree = sp_decomposition(diamond)
        assert sorted(sp_leaf_tasks(tree)) == sorted(diamond.task_ids())

    def test_evaluate_sum_max_gives_critical_path(self, diamond, chain3):
        for g in (diamond, chain3, fork_join(4, weight=2.0), random_series_parallel(9, rng=3)):
            tree = sp_decomposition(g)
            value = evaluate_sp(
                tree,
                leaf_value=lambda tid: 0.0 if tid is None else g.weight(tid),
                series_combine=lambda a, b: a + b,
                parallel_combine=max,
            )
            assert value == pytest.approx(critical_path_length(g))

    def test_evaluate_count_leaves(self, diamond):
        tree = sp_decomposition(diamond)
        count = evaluate_sp(
            tree,
            leaf_value=lambda tid: 0 if tid is None else 1,
            series_combine=lambda a, b: a + b,
            parallel_combine=lambda a, b: a + b,
        )
        assert count == diamond.num_tasks

    def test_tree_structure_of_chain(self, chain3):
        tree = sp_decomposition(chain3)
        assert isinstance(tree, SPSeries)
        assert [leaf.task_id for leaf in tree.children] == ["a", "b", "c"]

    def test_str_rendering(self, diamond):
        text = str(sp_decomposition(diamond))
        assert "||" in text and ";" in text


class TestMaterialisation:
    def test_rebuild_sp_graph_preserves_makespan(self, diamond):
        tree = sp_decomposition(diamond)
        rebuilt = make_series_parallel_graph(tree, diamond.weights())
        assert critical_path_length(rebuilt) == pytest.approx(critical_path_length(diamond))
        assert is_series_parallel(rebuilt)

    def test_rebuild_handles_duplicates(self):
        # A tree with the same task appearing twice (as Dodin duplication produces).
        tree = SPParallel(
            (
                SPSeries((SPLeaf("x"), SPLeaf("y"))),
                SPSeries((SPLeaf("x"), SPLeaf("z"))),
            )
        )
        graph = make_series_parallel_graph(tree, {"x": 1.0, "y": 2.0, "z": 5.0})
        assert graph.num_tasks == 4  # x duplicated
        assert critical_path_length(graph) == pytest.approx(6.0)
