"""Unit tests for repro.rv.discrete (finite discrete random variables)."""

import numpy as np
import pytest

from repro.exceptions import EstimationError
from repro.rv.discrete import DiscreteRV


class TestConstruction:
    def test_basic(self):
        rv = DiscreteRV([1.0, 2.0], [0.25, 0.75])
        assert rv.support_size == 2
        assert rv.mean() == pytest.approx(1.75)

    def test_values_sorted_and_merged(self):
        rv = DiscreteRV([3.0, 1.0, 3.0], [0.2, 0.5, 0.3])
        assert rv.values.tolist() == [1.0, 3.0]
        assert rv.probabilities.tolist() == pytest.approx([0.5, 0.5])

    def test_probability_normalisation_tolerance(self):
        rv = DiscreteRV([1.0, 2.0], [0.5000001, 0.4999999])
        assert rv.probabilities.sum() == pytest.approx(1.0)

    def test_rejects_bad_probabilities(self):
        with pytest.raises(EstimationError):
            DiscreteRV([1.0, 2.0], [0.5, 0.2])  # sums to 0.7
        with pytest.raises(EstimationError):
            DiscreteRV([1.0], [-1.0])
        with pytest.raises(EstimationError):
            DiscreteRV([], [])

    def test_constant_and_two_state(self):
        c = DiscreteRV.constant(5.0)
        assert c.mean() == 5.0 and c.variance() == 0.0
        ts = DiscreteRV.two_state(1.0, 2.0, 0.1)
        assert ts.mean() == pytest.approx(1.1)
        assert DiscreteRV.two_state(1.0, 2.0, 0.0).support_size == 1
        assert DiscreteRV.two_state(1.0, 2.0, 1.0).mean() == 2.0

    def test_from_samples(self):
        rv = DiscreteRV.from_samples([1, 1, 2, 2, 2, 5])
        assert rv.support_size == 3
        assert rv.cdf(2) == pytest.approx(5 / 6)


class TestMomentsAndCdf:
    def test_moments(self):
        rv = DiscreteRV([0.0, 10.0], [0.5, 0.5])
        assert rv.mean() == 5.0
        assert rv.variance() == 25.0
        assert rv.std() == 5.0
        assert rv.moment(2) == 50.0
        assert rv.min() == 0.0 and rv.max() == 10.0

    def test_cdf_scalar_and_vector(self):
        rv = DiscreteRV([1.0, 2.0, 4.0], [0.2, 0.3, 0.5])
        assert rv.cdf(0.5) == 0.0
        assert rv.cdf(1.0) == pytest.approx(0.2)
        assert rv.cdf(3.0) == pytest.approx(0.5)
        assert rv.cdf(10.0) == pytest.approx(1.0)
        np.testing.assert_allclose(rv.cdf(np.array([1.0, 2.0, 4.0])), [0.2, 0.5, 1.0])

    def test_quantiles(self):
        rv = DiscreteRV([1.0, 2.0, 4.0], [0.2, 0.3, 0.5])
        assert rv.quantile(0.0) == 1.0
        assert rv.quantile(0.2) == 1.0
        assert rv.quantile(0.5) == 2.0
        assert rv.quantile(1.0) == 4.0
        with pytest.raises(EstimationError):
            rv.quantile(1.5)

    def test_sampling_mean(self, rng):
        rv = DiscreteRV([1.0, 3.0, 7.0], [0.2, 0.5, 0.3])
        samples = rv.sample(rng, size=100_000)
        assert samples.mean() == pytest.approx(rv.mean(), rel=1e-2)


class TestAlgebra:
    def test_shift_scale(self):
        rv = DiscreteRV([1.0, 2.0], [0.5, 0.5])
        assert rv.shift(3.0).values.tolist() == [4.0, 5.0]
        assert rv.scale(2.0).mean() == pytest.approx(3.0)
        assert (rv + 1.0).mean() == pytest.approx(2.5)
        assert (2.0 * rv).mean() == pytest.approx(3.0)

    def test_convolution_of_independent_sums(self):
        a = DiscreteRV.two_state(1.0, 2.0, 0.5)
        b = DiscreteRV.two_state(10.0, 20.0, 0.25)
        s = a.add(b)
        assert s.mean() == pytest.approx(a.mean() + b.mean())
        assert s.variance() == pytest.approx(a.variance() + b.variance())
        assert s.support_size == 4

    def test_maximum_cdf_product(self):
        a = DiscreteRV([1.0, 3.0], [0.5, 0.5])
        b = DiscreteRV([2.0, 4.0], [0.5, 0.5])
        m = a.maximum(b)
        # P(max <= 2) = P(a<=2)*P(b<=2) = 0.5*0.5
        assert m.cdf(2.0) == pytest.approx(0.25)
        assert m.cdf(4.0) == pytest.approx(1.0)
        # exact mean: max values 2(.25), 3(.25), 4(.5) -> 3.25
        assert m.mean() == pytest.approx(3.25)

    def test_maximum_with_constant(self):
        rv = DiscreteRV([1.0, 5.0], [0.5, 0.5])
        m = rv.maximum(DiscreteRV.constant(3.0))
        assert m.values.tolist() == [3.0, 5.0]
        assert m.mean() == pytest.approx(4.0)

    def test_minimum(self):
        a = DiscreteRV([1.0, 3.0], [0.5, 0.5])
        b = DiscreteRV([2.0, 4.0], [0.5, 0.5])
        lo = a.minimum(b)
        # min values: 1 (p=.5), 2 (p=.25), 3 (p=.25)
        assert lo.mean() == pytest.approx(0.5 * 1 + 0.25 * 2 + 0.25 * 3)

    def test_max_mean_at_least_individual_means(self):
        a = DiscreteRV.two_state(1.0, 2.0, 0.3)
        b = DiscreteRV.two_state(1.5, 3.0, 0.1)
        m = a.maximum(b)
        assert m.mean() >= max(a.mean(), b.mean()) - 1e-12

    def test_mixture(self):
        a = DiscreteRV.constant(0.0)
        b = DiscreteRV.constant(10.0)
        mix = a.mixture(b, 0.75)
        assert mix.mean() == pytest.approx(2.5)

    def test_sum_is_commutative_and_associative(self):
        a = DiscreteRV.two_state(1.0, 2.0, 0.2)
        b = DiscreteRV.two_state(3.0, 6.0, 0.4)
        c = DiscreteRV.two_state(0.5, 1.0, 0.1)
        left = a.add(b).add(c)
        right = a.add(b.add(c))
        assert left.allclose(right)
        assert a.add(b).allclose(b.add(a))


class TestPruning:
    def test_prune_preserves_mean(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0, 10, 200)
        probs = rng.random(200)
        probs /= probs.sum()
        rv = DiscreteRV(values, probs)
        pruned = rv.pruned(16)
        assert pruned.support_size <= 16
        assert pruned.mean() == pytest.approx(rv.mean())
        assert pruned.variance() <= rv.variance() + 1e-12

    def test_prune_noop_when_small(self):
        rv = DiscreteRV.two_state(1.0, 2.0, 0.5)
        assert rv.pruned(10) is rv

    def test_prune_invalid(self):
        with pytest.raises(EstimationError):
            DiscreteRV.constant(1.0).pruned(0)

    def test_add_with_max_support(self):
        chain = DiscreteRV.constant(0.0)
        for _ in range(12):
            chain = chain.add(DiscreteRV.two_state(1.0, 2.0, 0.3), max_support=32)
        assert chain.support_size <= 32
        assert chain.mean() == pytest.approx(12 * 1.3, rel=1e-9)
