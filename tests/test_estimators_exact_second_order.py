"""Unit tests for the exact enumerator and the second-order extension."""

import numpy as np
import pytest

from repro.core.generators import chain_graph, erdos_renyi_dag
from repro.core.graph import TaskGraph
from repro.core.paths import critical_path_length
from repro.estimators.exact import ExactEstimator
from repro.estimators.first_order import FirstOrderEstimator
from repro.estimators.second_order import SecondOrderEstimator
from repro.exceptions import EstimationError
from repro.failures.models import ExponentialErrorModel, FixedProbabilityModel


class TestExactEstimator:
    def test_single_task_closed_form(self):
        g = TaskGraph()
        g.add_task("t", 3.0)
        model = FixedProbabilityModel(0.25)
        result = ExactEstimator().estimate(g, model)
        assert result.expected_makespan == pytest.approx(0.75 * 3.0 + 0.25 * 6.0)

    def test_two_independent_tasks_closed_form(self):
        g = TaskGraph()
        g.add_task("a", 1.0)
        g.add_task("b", 1.0)
        q = 0.5
        model = FixedProbabilityModel(q)
        # makespan = 1 unless at least one task fails (then 2).
        expected = (1 - q) ** 2 * 1.0 + (1 - (1 - q) ** 2) * 2.0
        result = ExactEstimator().estimate(g, model)
        assert result.expected_makespan == pytest.approx(expected)

    def test_chain_expectation_is_sum_of_task_expectations(self):
        weights = [1.0, 2.0, 0.5]
        g = chain_graph(3, weight=weights)
        model = ExponentialErrorModel(0.3)
        expected = sum(
            (1 - model.failure_probability(w)) * w + model.failure_probability(w) * 2 * w
            for w in weights
        )
        result = ExactEstimator().estimate(g, model)
        assert result.expected_makespan == pytest.approx(expected)

    def test_refuses_large_graphs(self, cholesky4):
        with pytest.raises(EstimationError):
            ExactEstimator(max_tasks=10).estimate(cholesky4, ExponentialErrorModel(0.01))

    def test_zero_rate(self, small_random_dag):
        result = ExactEstimator().estimate(small_random_dag, ExponentialErrorModel(0.0))
        assert result.expected_makespan == pytest.approx(
            critical_path_length(small_random_dag)
        )

    def test_reexecution_factor(self):
        g = TaskGraph()
        g.add_task("t", 1.0)
        model = FixedProbabilityModel(0.5)
        result = ExactEstimator(reexecution_factor=3.0).estimate(g, model)
        assert result.expected_makespan == pytest.approx(0.5 * 1.0 + 0.5 * 3.0)

    def test_agrees_with_custom_table_method(self, diamond):
        model = FixedProbabilityModel(0.2)
        est = ExactEstimator()
        via_model = est.estimate(diamond, model).expected_makespan
        nominal = diamond.weights()
        alternative = {t: 2 * w for t, w in nominal.items()}
        pfail = {t: 0.2 for t in nominal}
        via_table = est.expected_makespan_from_table(diamond, nominal, alternative, pfail)
        assert via_table == pytest.approx(via_model)

    def test_monte_carlo_agrees_with_exact(self, small_random_dag):
        from repro.estimators.montecarlo import MonteCarloEstimator

        model = ExponentialErrorModel.for_graph(small_random_dag, 0.05)
        exact = ExactEstimator().estimate(small_random_dag, model).expected_makespan
        mc = MonteCarloEstimator(trials=150_000, seed=3).estimate(small_random_dag, model)
        low, high = mc.confidence_interval
        # Allow 4 standard errors of slack around the 95% interval.
        slack = 2 * (mc.std_error or 0.0)
        assert low - slack <= exact <= high + slack


class TestSecondOrderEstimator:
    @pytest.mark.parametrize("pfail", [0.005, 0.01, 0.02])
    def test_closer_to_exact_than_first_order(self, small_random_dag, pfail):
        model = ExponentialErrorModel.for_graph(small_random_dag, pfail)
        exact = ExactEstimator().estimate(small_random_dag, model).expected_makespan
        first = FirstOrderEstimator().estimate(small_random_dag, model).expected_makespan
        second = SecondOrderEstimator().estimate(small_random_dag, model).expected_makespan
        assert abs(second - exact) <= abs(first - exact) + 1e-12

    def test_second_order_error_scales_cubically(self):
        graph = erdos_renyi_dag(9, 0.4, rng=11)
        errors = []
        for pfail in (0.08, 0.04, 0.02):
            model = ExponentialErrorModel.for_graph(graph, pfail)
            exact = ExactEstimator().estimate(graph, model).expected_makespan
            second = SecondOrderEstimator().estimate(graph, model).expected_makespan
            errors.append(abs(second - exact) / exact)
        # Each halving of p_fail should reduce the error by roughly 8x; allow
        # a generous band because the residual also contains the tail term.
        assert errors[0] > errors[1] > errors[2]
        assert errors[0] / errors[2] > 16

    def test_probability_coverage_reported(self, small_random_dag):
        model = ExponentialErrorModel.for_graph(small_random_dag, 0.01)
        result = SecondOrderEstimator().estimate(small_random_dag, model)
        covered = result.details["probability_covered"]
        assert 0.99 < covered <= 1.0 + 1e-12
        assert result.details["residual_probability"] == pytest.approx(1 - covered, abs=1e-12)

    def test_tail_handling_ordering(self, small_random_dag):
        model = ExponentialErrorModel.for_graph(small_random_dag, 0.1)
        drop = SecondOrderEstimator(tail_handling="drop").estimate(
            small_random_dag, model
        ).expected_makespan
        free = SecondOrderEstimator(tail_handling="failure-free").estimate(
            small_random_dag, model
        ).expected_makespan
        worst = SecondOrderEstimator(tail_handling="worst-pair").estimate(
            small_random_dag, model
        ).expected_makespan
        assert drop <= free <= worst

    def test_invalid_tail_handling(self):
        with pytest.raises(EstimationError):
            SecondOrderEstimator(tail_handling="bogus")

    def test_zero_rate(self, diamond):
        result = SecondOrderEstimator().estimate(diamond, ExponentialErrorModel(0.0))
        assert result.expected_makespan == pytest.approx(critical_path_length(diamond))

    def test_reduces_to_first_order_at_tiny_rates(self, cholesky4):
        model = ExponentialErrorModel.for_graph(cholesky4, 1e-6)
        first = FirstOrderEstimator().estimate(cholesky4, model).expected_makespan
        second = SecondOrderEstimator().estimate(cholesky4, model).expected_makespan
        assert second == pytest.approx(first, rel=1e-9)
