"""Unit tests for repro.core.validation and repro.core.transform."""

import pytest

from repro.core.graph import TaskGraph
from repro.core.paths import critical_path_length
from repro.core.transform import (
    SINK_ID,
    SOURCE_ID,
    add_source_sink,
    level_partition,
    merge_linear_chains,
    relabel,
    reversed_graph,
    scaled_copy,
    transitive_reduction,
    with_unit_weights,
)
from repro.core.validation import (
    ensure_valid,
    find_cycle,
    isolated_tasks,
    unreachable_tasks,
    validate_graph,
)
from repro.exceptions import CycleError, GraphError


def cyclic_graph():
    g = TaskGraph(name="cyclic")
    for name in "abc":
        g.add_task(name, 1.0)
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    g.add_edge("c", "a")
    return g


class TestValidation:
    def test_valid_graph_report(self, cholesky4):
        report = validate_graph(cholesky4)
        assert report.ok
        assert bool(report)
        report.raise_if_invalid()  # must not raise

    def test_empty_graph_is_invalid_by_default(self):
        report = validate_graph(TaskGraph())
        assert not report.ok
        assert validate_graph(TaskGraph(), allow_empty=True).ok

    def test_cycle_reported(self):
        report = validate_graph(cyclic_graph())
        assert not report.ok
        assert any("cycle" in e for e in report.errors)

    def test_find_cycle_returns_actual_cycle(self):
        g = cyclic_graph()
        cycle = find_cycle(g)
        assert len(cycle) == 3
        # every consecutive pair is an edge, and it closes.
        closed = cycle + [cycle[0]]
        for src, dst in zip(closed, closed[1:]):
            assert g.has_edge(src, dst)

    def test_find_cycle_on_dag_is_empty(self, diamond):
        assert find_cycle(diamond) == []

    def test_isolated_tasks_warning(self):
        g = TaskGraph()
        g.add_task("a", 1.0)
        g.add_task("b", 1.0)
        g.add_edge("a", "b")
        g.add_task("lonely", 1.0)
        assert isolated_tasks(g) == ["lonely"]
        report = validate_graph(g)
        assert report.ok  # isolated tasks are only warnings
        assert any("isolated" in w for w in report.warnings)

    def test_unreachable_only_with_cycles(self, diamond):
        assert unreachable_tasks(diamond) == set()
        g = cyclic_graph()
        assert unreachable_tasks(g) == {"a", "b", "c"}

    def test_ensure_valid_raises_cycle_error(self):
        with pytest.raises(CycleError):
            ensure_valid(cyclic_graph())

    def test_ensure_valid_returns_graph(self, diamond):
        assert ensure_valid(diamond) is diamond


class TestSourceSink:
    def test_adds_zero_weight_terminals(self, non_sp_graph):
        augmented = add_source_sink(non_sp_graph)
        assert SOURCE_ID in augmented and SINK_ID in augmented
        assert augmented.weight(SOURCE_ID) == 0.0
        assert augmented.sources() == [SOURCE_ID]
        assert augmented.sinks() == [SINK_ID]

    def test_preserves_critical_path_length(self, non_sp_graph, cholesky4):
        for g in (non_sp_graph, cholesky4):
            assert critical_path_length(add_source_sink(g)) == pytest.approx(
                critical_path_length(g)
            )

    def test_name_clash_rejected(self, diamond):
        clash = diamond.copy()
        clash.add_task(SOURCE_ID, 1.0)
        with pytest.raises(GraphError):
            add_source_sink(clash)


class TestTransforms:
    def test_scaled_copy(self, diamond):
        scaled = scaled_copy(diamond, 3.0)
        assert scaled.weight("right") == pytest.approx(12.0)
        assert diamond.weight("right") == pytest.approx(4.0)

    def test_unit_weights(self, diamond):
        unit = with_unit_weights(diamond)
        assert all(t.weight == 1.0 for t in unit.tasks())

    def test_relabel_with_mapping(self, chain3):
        renamed = relabel(chain3, {"a": "first"})
        assert "first" in renamed and "a" not in renamed
        assert renamed.has_edge("first", "b")

    def test_relabel_with_function(self, chain3):
        renamed = relabel(chain3, function=lambda t: f"task_{t}")
        assert set(renamed.task_ids()) == {"task_a", "task_b", "task_c"}

    def test_relabel_must_be_injective(self, chain3):
        with pytest.raises(GraphError):
            relabel(chain3, function=lambda t: "same")

    def test_relabel_requires_exactly_one_spec(self, chain3):
        with pytest.raises(GraphError):
            relabel(chain3)

    def test_reversed_graph(self, chain3):
        rev = reversed_graph(chain3)
        assert rev.has_edge("c", "b") and rev.has_edge("b", "a")
        assert critical_path_length(rev) == pytest.approx(critical_path_length(chain3))

    def test_transitive_reduction_removes_shortcuts(self):
        g = TaskGraph()
        for name in "abc":
            g.add_task(name, 1.0)
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("a", "c")  # redundant shortcut
        reduced = transitive_reduction(g)
        assert reduced.num_edges == 2
        assert not reduced.has_edge("a", "c")
        assert critical_path_length(reduced) == pytest.approx(critical_path_length(g))

    def test_transitive_reduction_preserves_critical_path(self, lu4):
        reduced = transitive_reduction(lu4)
        assert reduced.num_edges <= lu4.num_edges
        assert critical_path_length(reduced) == pytest.approx(critical_path_length(lu4))

    def test_merge_linear_chains(self, chain3):
        merged, members = merge_linear_chains(chain3)
        assert merged.num_tasks == 1
        only = merged.task_ids()[0]
        assert merged.weight(only) == pytest.approx(6.0)
        assert members[only] == ("a", "b", "c")

    def test_merge_preserves_deterministic_makespan(self, cholesky4):
        merged, _ = merge_linear_chains(cholesky4)
        assert merged.num_tasks <= cholesky4.num_tasks
        assert critical_path_length(merged) == pytest.approx(critical_path_length(cholesky4))

    def test_level_partition(self, diamond):
        levels = level_partition(diamond)
        assert levels[0] == ["s"]
        assert set(levels[1]) == {"left", "right"}
        assert levels[2] == ["t"]
