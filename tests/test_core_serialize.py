"""Unit tests for repro.core.serialize (JSON, DOT, edge lists)."""

import json

import pytest

from repro.core.graph import TaskGraph
from repro.core.paths import critical_path_length
from repro.core.serialize import (
    dumps_json,
    from_edge_list,
    graph_from_dict,
    graph_to_dict,
    load_json,
    loads_json,
    save_dot,
    save_json,
    to_dot,
    to_edge_list,
)
from repro.exceptions import SerializationError


class TestJson:
    def test_roundtrip_string(self, cholesky4):
        rebuilt = loads_json(dumps_json(cholesky4))
        assert rebuilt.num_tasks == cholesky4.num_tasks
        assert set(rebuilt.edges()) == set(cholesky4.edges())
        assert rebuilt.weights() == pytest.approx(cholesky4.weights())
        assert rebuilt.task("POTRF_0").kernel == "POTRF"

    def test_roundtrip_file(self, tmp_path, diamond):
        path = save_json(diamond, tmp_path / "diamond.json")
        rebuilt = load_json(path)
        assert critical_path_length(rebuilt) == pytest.approx(critical_path_length(diamond))

    def test_dict_structure(self, chain3):
        payload = graph_to_dict(chain3)
        assert payload["format"] == "repro-taskgraph"
        assert len(payload["tasks"]) == 3
        assert len(payload["edges"]) == 2
        # payload is valid JSON
        json.dumps(payload)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_json(tmp_path / "nope.json")

    def test_invalid_json_text(self):
        with pytest.raises(SerializationError):
            loads_json("{not json")

    def test_malformed_payload(self):
        with pytest.raises(SerializationError):
            graph_from_dict({"tasks": [{"weight": 1.0}]})  # missing id

    def test_wrong_format_tag(self):
        with pytest.raises(SerializationError):
            graph_from_dict({"format": "something-else", "tasks": []})

    def test_edge_attributes_preserved(self):
        g = TaskGraph()
        g.add_task("a", 1.0)
        g.add_task("b", 1.0)
        g.add_edge("a", "b", data_size=42)
        rebuilt = loads_json(dumps_json(g))
        assert rebuilt.edge_attributes("a", "b")["data_size"] == 42


class TestDot:
    def test_contains_all_tasks_and_edges(self, diamond):
        dot = to_dot(diamond)
        for tid in diamond.task_ids():
            assert f'"{tid}"' in dot
        assert '"s" -> "left"' in dot
        assert dot.startswith("digraph")

    def test_highlight_and_weights(self, diamond):
        dot = to_dot(diamond, show_weights=True, highlight=["right"])
        assert "fillcolor" in dot
        assert "4" in dot  # the weight of "right"

    def test_save_dot(self, tmp_path, chain3):
        path = save_dot(chain3, tmp_path / "chain.dot", rankdir="LR")
        text = path.read_text()
        assert "rankdir=LR" in text


class TestEdgeList:
    def test_roundtrip(self, diamond):
        text = to_edge_list(diamond)
        rebuilt = from_edge_list(text)
        assert set(rebuilt.task_ids()) == set(diamond.task_ids())
        assert set(rebuilt.edges()) == set(diamond.edges())
        assert rebuilt.weight("right") == pytest.approx(4.0)

    def test_comments_and_blank_lines_ignored(self):
        text = "# comment\n\ntask a 1.0\ntask b 2.0\nedge a b\n"
        g = from_edge_list(text)
        assert g.num_tasks == 2 and g.num_edges == 1

    def test_bad_records_raise(self):
        with pytest.raises(SerializationError):
            from_edge_list("task a\n")
        with pytest.raises(SerializationError):
            from_edge_list("task a notanumber\n")
        with pytest.raises(SerializationError):
            from_edge_list("frobnicate a b\n")
