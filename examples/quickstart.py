#!/usr/bin/env python3
"""Quickstart: expected makespan of a task graph under silent errors.

This example walks through the core workflow of the library:

1. build a task graph (here the tiled Cholesky factorization DAG of the
   paper's Figure 1);
2. calibrate the silent-error model the way the paper does (pick the error
   rate λ such that a task of average weight fails with probability
   ``p_fail``);
3. estimate the expected makespan with the paper's first-order
   approximation and with its competitors (Dodin, Normal/Sculli);
4. compare everything against a Monte Carlo reference and against the
   analytic bounds.

Run with:  ``python examples/quickstart.py``
"""

from __future__ import annotations

import repro
from repro.estimators import makespan_bounds


def main() -> None:
    # 1. A task graph: tiled Cholesky factorization of a 6x6 tiled matrix.
    graph = repro.cholesky_dag(6)
    print(f"graph: {graph.name}  ({graph.num_tasks} tasks, {graph.num_edges} edges)")
    print(f"failure-free makespan d(G) = {repro.critical_path_length(graph):.4f} s")
    print(f"average task weight ā      = {graph.mean_weight():.4f} s")

    # 2. The silent-error model: a task of average weight fails with
    #    probability 0.001 (the middle value used in the paper's figures).
    pfail = 1e-3
    model = repro.ExponentialErrorModel.for_graph(graph, pfail)
    print(f"\ncalibrated error rate λ = {model.error_rate:.5f} /s  "
          f"(platform MTBF = {model.mtbf:.1f} s)")

    # 3. The three approximations of the paper, plus extensions.
    print("\nexpected-makespan estimates")
    for method in ("first-order", "second-order", "normal", "normal-correlated", "dodin"):
        result = repro.estimate_expected_makespan(graph, model, method=method)
        print(f"  {method:18s} {result.expected_makespan:.6f} s   "
              f"({result.wall_time * 1e3:6.1f} ms)")

    # 4. Ground truth and sanity brackets.
    reference = repro.estimate_expected_makespan(
        graph, model, method="monte-carlo", trials=100_000, seed=42
    )
    low, high = makespan_bounds(graph, model)
    print(f"\nMonte Carlo reference      {reference.expected_makespan:.6f} s  "
          f"(± {reference.std_error:.6f}, {reference.details['trials']} trials)")
    print(f"analytic bounds            [{low:.6f}, {high:.6f}]")

    first = repro.estimate_expected_makespan(graph, model, method="first-order")
    diff = repro.normalized_difference(
        first.expected_makespan, reference.expected_makespan
    )
    print(f"\nfirst-order vs Monte Carlo: normalised difference = {diff:+.2e}")
    print("(the paper reports errors of this magnitude for p_fail = 0.001; "
          "see EXPERIMENTS.md for the full reproduction)")


if __name__ == "__main__":
    main()
