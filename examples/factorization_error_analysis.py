#!/usr/bin/env python3
"""Error analysis across the paper's three DAG families (mini Figures 4-12).

For each factorization (Cholesky, LU, QR) and each failure probability, the
script compares the Dodin, Normal and First Order approximations against a
Monte Carlo reference over a range of graph sizes, and prints the same
error-vs-size series the paper plots, as text tables and ASCII plots.

This is a scaled-down interactive version of the full experiment drivers
(``python -m repro experiment all``); tweak ``SIZES``, ``PFAILS`` and
``TRIALS`` below to trade accuracy for runtime.

Run with:  ``python examples/factorization_error_analysis.py``
"""

from __future__ import annotations

from repro.experiments import (
    FigureConfig,
    figure_ascii_plot,
    figure_table,
    run_error_vs_size,
)

#: Graph sizes (number of tile rows/columns k).  The paper uses 4..12.
SIZES = (4, 6, 8)

#: Failure probabilities of a task of average weight.  The paper uses
#: 1e-2, 1e-3 and 1e-4.
PFAILS = (1e-2, 1e-3)

#: Monte Carlo trials for the reference (paper: 300,000).
TRIALS = 30_000

WORKFLOWS = ("cholesky", "lu", "qr")


def main() -> None:
    for workflow in WORKFLOWS:
        for pfail in PFAILS:
            config = FigureConfig(
                figure=f"{workflow}-pfail{pfail:g}",
                workflow=workflow,
                pfail=pfail,
                sizes=SIZES,
            )
            result = run_error_vs_size(config, mc_trials=TRIALS, seed=1)
            print()
            print(figure_table(result))
            print()
            print(figure_ascii_plot(result))
            winners = result.winner_per_size()
            print(f"most accurate estimator per size: {winners}")
            print("-" * 78)


if __name__ == "__main__":
    main()
