#!/usr/bin/env python3
"""DVFS trade-off: energy vs. expected makespan under silent errors.

Section II-B of the paper recalls that lowering the processor
voltage/frequency saves energy but increases the silent-error rate
exponentially (Eq. (1)).  This example quantifies the resulting trade-off
for a tiled LU factorization:

* at each operating speed, task durations stretch by ``s_max / s`` and the
  error rate follows the DVFS model λ(s) = λ0 · 10^{d (s_max−s)/(s_max−s_min)};
* the expected makespan is computed with the first-order approximation (the
  cheap-but-accurate estimate that makes such sweeps practical);
* dynamic energy follows the classical cubic power model.

The output is the speed sweep table: speed, error rate, expected makespan,
energy, and energy-delay product — the data from which an operating point
would be chosen.

Run with:  ``python examples/dvfs_tradeoff.py``
"""

from __future__ import annotations

import repro
from repro.core.transform import scaled_copy
from repro.failures import DvfsErrorModel, EnergyModel

K = 8
LAMBDA0 = 1e-5        # error rate at full speed (errors per second of work)
SENSITIVITY = 3.0     # d in Eq. (1): 10^3 more errors at minimum speed
SMIN, SMAX = 0.4, 1.0
SPEED_POINTS = 7


def main() -> None:
    base_graph = repro.lu_dag(K)
    dvfs = DvfsErrorModel(lambda0=LAMBDA0, sensitivity=SENSITIVITY, smin=SMIN, smax=SMAX)
    energy_model = EnergyModel(static_power=0.2, kappa=1.0, smax=SMAX)

    total_work = base_graph.total_weight()
    print(f"workflow: {base_graph.name} ({base_graph.num_tasks} tasks, "
          f"{total_work:.2f} s of sequential work at full speed)")
    print(f"DVFS error model: λ0 = {LAMBDA0:g}, d = {SENSITIVITY:g}, "
          f"speeds in [{SMIN}, {SMAX}]\n")

    header = (
        f"{'speed':>6s} {'λ(s)':>12s} {'E[makespan] (s)':>16s} "
        f"{'slowdown':>9s} {'energy (J)':>11s} {'EDP':>12s}"
    )
    print(header)
    print("-" * len(header))

    best = None
    for i in range(SPEED_POINTS):
        speed = SMIN + (SMAX - SMIN) * i / (SPEED_POINTS - 1)
        # Task durations stretch as the processor slows down.
        graph = scaled_copy(base_graph, SMAX / speed)
        model = dvfs.model_at(speed)
        estimate = repro.estimate_expected_makespan(graph, model, method="first-order")
        makespan = estimate.expected_makespan
        slowdown = makespan / estimate.failure_free_makespan
        energy = energy_model.energy(total_work, speed)
        edp = energy * makespan
        print(
            f"{speed:6.2f} {model.error_rate:12.3e} {makespan:16.4f} "
            f"{slowdown:9.4f} {energy:11.2f} {edp:12.2f}"
        )
        if best is None or edp < best[1]:
            best = (speed, edp)

    print(f"\nbest energy-delay product at speed {best[0]:.2f} "
          f"(EDP = {best[1]:.2f})")
    print("Lowering the speed further keeps saving dynamic energy but the "
          "exponentially growing silent-error rate (and the re-executions it "
          "causes) eventually dominates both time and energy.")


if __name__ == "__main__":
    main()
