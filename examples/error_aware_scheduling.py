#!/usr/bin/env python3
"""Silent-error-aware list scheduling (the paper's motivating application).

The paper's introduction argues that computing expected path lengths under
silent errors is the missing ingredient for error-aware versions of CP
scheduling and HEFT.  This example puts the pieces together:

1. build a factorization DAG and a finite homogeneous platform;
2. compute task priorities three ways — deterministic bottom levels,
   first-order *expected* bottom levels, and Sculli-based expected bottom
   levels;
3. build the corresponding CP schedules (plus a HEFT schedule on a
   heterogeneous platform);
4. execute every schedule many times under injected silent errors with
   verification + re-execution, and compare the resulting expected
   makespans.

Run with:  ``python examples/error_aware_scheduling.py``
"""

from __future__ import annotations

import repro
from repro.scheduling import (
    Platform,
    cp_schedule,
    expected_schedule_makespan,
    heft_schedule,
)

WORKFLOW = "cholesky"
K = 8
PROCESSORS = 6
PFAIL = 2e-2        # deliberately pessimistic so re-executions matter
TRIALS = 400


def main() -> None:
    graph = repro.build_dag(WORKFLOW, K)
    model = repro.ExponentialErrorModel.for_graph(graph, PFAIL)
    platform = Platform.homogeneous(PROCESSORS)

    print(f"workflow : {graph.name} ({graph.num_tasks} tasks)")
    print(f"platform : {PROCESSORS} identical processors")
    print(f"errors   : p_fail = {PFAIL:g} per average-weight task "
          f"(λ = {model.error_rate:.4f}/s)\n")

    schedules = {
        "CP / deterministic bottom levels": cp_schedule(
            graph, platform, priority="bottom-level"
        ),
        "CP / first-order expected bottom levels": cp_schedule(
            graph, platform, priority="expected-first-order", model=model
        ),
        "CP / Sculli expected bottom levels": cp_schedule(
            graph, platform, priority="expected-sculli", model=model
        ),
    }

    print(f"{'scheduler':42s} {'planned':>10s} {'E[makespan]':>12s} {'p99':>10s}")
    for name, schedule in schedules.items():
        mean, distribution = expected_schedule_makespan(
            schedule, model, trials=TRIALS, seed=0
        )
        print(
            f"{name:42s} {schedule.makespan:10.4f} {mean:12.4f} "
            f"{distribution.quantile(0.99):10.4f}"
        )

    # Heterogeneous platform: two fast accelerators and four slow cores.
    hetero = Platform.heterogeneous([4.0, 4.0, 1.0, 1.0, 1.0, 1.0])
    plain_heft = heft_schedule(graph, hetero)
    aware_heft = heft_schedule(graph, hetero, model=model, error_aware_placement=True)
    for name, schedule in (
        ("HEFT (heterogeneous, failure-free ranks)", plain_heft),
        ("HEFT (heterogeneous, failure-aware ranks)", aware_heft),
    ):
        mean, distribution = expected_schedule_makespan(
            schedule, model, trials=TRIALS, seed=0
        )
        print(
            f"{name:42s} {schedule.makespan:10.4f} {mean:12.4f} "
            f"{distribution.quantile(0.99):10.4f}"
        )

    print("\nNote: with unlimited processors the expected makespan would be")
    first_order = repro.estimate_expected_makespan(graph, model, method="first-order")
    print(f"the first-order estimate {first_order.expected_makespan:.4f} s "
          f"(critical path {first_order.failure_free_makespan:.4f} s).")


if __name__ == "__main__":
    main()
