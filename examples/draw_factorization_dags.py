#!/usr/bin/env python3
"""Regenerate Figures 1-3 of the paper: the k = 5 factorization DAGs.

The script builds the tiled Cholesky, LU and QR DAGs for a 5x5 tiled matrix
(with the same task labels as the paper: ``POTRF_4``, ``GEMM_4_2_1``,
``TRSMU_1_3``, ``TSMQR_3_4_2``, ...), highlights the critical path, and
writes Graphviz DOT files next to this script.  Render them with e.g.

    dot -Tpdf cholesky_k5.dot -o cholesky_k5.pdf

Run with:  ``python examples/draw_factorization_dags.py``
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.core import critical_path, save_dot

OUTPUT_DIR = Path(__file__).resolve().parent
K = 5


def main() -> None:
    builders = {
        "cholesky_k5": repro.cholesky_dag,
        "lu_k5": repro.lu_dag,
        "qr_k5": repro.qr_dag,
    }
    for stem, builder in builders.items():
        graph = builder(K)
        path = critical_path(graph)
        out = OUTPUT_DIR / f"{stem}.dot"
        save_dot(graph, out, show_weights=True, highlight=path)
        print(
            f"{graph.name}: {graph.num_tasks} tasks, {graph.num_edges} edges, "
            f"critical path of {len(path)} tasks "
            f"({repro.critical_path_length(graph):.3f} s) -> {out.name}"
        )
    print("\nRender with Graphviz, e.g.:  dot -Tpdf cholesky_k5.dot -o cholesky_k5.pdf")


if __name__ == "__main__":
    main()
